package rv32

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates RV32IM assembly source into a flat binary image
// starting at the given base address. It supports:
//
//   - all RV32IM instructions by their standard mnemonics;
//   - pseudo-instructions: nop, mv, li, la, j, jr, ret, call, beqz, bnez,
//     neg, not, seqz, snez;
//   - labels ("name:"), the ".word" data directive, and "#"/"//" comments;
//   - numeric literals in decimal or 0x-hex, and "%lo(label)/%hi(label)".
//
// Instructions are encoded little-endian at 4-byte granularity.
func Assemble(src string, base uint32) ([]byte, map[string]uint32, error) {
	lines := strings.Split(src, "\n")

	type item struct {
		line   int
		mnem   string
		args   []string
		addr   uint32
		nWords int
	}

	// Pass 1: tokenize, expand pseudo sizes, assign addresses, bind labels.
	labels := map[string]uint32{}
	var items []item
	addr := base
	for ln, raw := range lines {
		line := stripComment(raw)
		for {
			line = strings.TrimSpace(line)
			if idx := strings.Index(line, ":"); idx >= 0 && isLabel(line[:idx]) {
				name := line[:idx]
				if _, dup := labels[name]; dup {
					return nil, nil, fmt.Errorf("line %d: duplicate label %q", ln+1, name)
				}
				labels[name] = addr
				line = line[idx+1:]
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		mnem, args := splitInstr(line)
		n, err := wordCount(mnem, args)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		items = append(items, item{line: ln + 1, mnem: mnem, args: args, addr: addr, nWords: n})
		addr += uint32(4 * n)
	}

	// Pass 2: encode.
	var out []byte
	for _, it := range items {
		words, err := encodeItem(it.mnem, it.args, it.addr, labels)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %v", it.line, err)
		}
		if len(words) != it.nWords {
			return nil, nil, fmt.Errorf("line %d: internal size mismatch for %s", it.line, it.mnem)
		}
		for _, w := range words {
			out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
	}
	return out, labels, nil
}

func stripComment(s string) string {
	if i := strings.Index(s, "#"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

func isLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitInstr(line string) (string, []string) {
	fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' })
	mnem := strings.ToLower(fields[0])
	rest := strings.Join(fields[1:], " ")
	if rest == "" {
		return mnem, nil
	}
	parts := strings.Split(rest, ",")
	args := make([]string, 0, len(parts))
	for _, p := range parts {
		args = append(args, strings.TrimSpace(p))
	}
	return mnem, args
}

// wordCount returns how many 32-bit words an item expands to.
func wordCount(mnem string, args []string) (int, error) {
	switch mnem {
	case "li":
		if len(args) != 2 {
			return 0, fmt.Errorf("li needs 2 args")
		}
		v, err := parseImm(args[1], nil)
		if err != nil {
			return 0, err
		}
		if fitsImm12(v) {
			return 1, nil
		}
		return 2, nil
	case "la", "call":
		return 2, nil
	case ".word":
		return len(args), nil
	default:
		return 1, nil
	}
}

var regNames = func() map[string]int {
	m := map[string]int{}
	for i := 0; i < 32; i++ {
		m[fmt.Sprintf("x%d", i)] = i
	}
	abi := []string{"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
		"s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
		"t3", "t4", "t5", "t6"}
	for i, n := range abi {
		m[n] = i
	}
	m["fp"] = 8
	return m
}()

func parseReg(s string) (int, error) {
	if r, ok := regNames[strings.ToLower(s)]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("unknown register %q", s)
}

// parseImm parses an immediate: decimal, hex, a label (if labels != nil),
// or %lo()/%hi() of a label.
func parseImm(s string, labels map[string]uint32) (int32, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "%lo(") && strings.HasSuffix(s, ")") {
		v, err := parseImm(s[4:len(s)-1], labels)
		if err != nil {
			return 0, err
		}
		return int32(uint32(v)<<20) >> 20, nil
	}
	if strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")") {
		v, err := parseImm(s[4:len(s)-1], labels)
		if err != nil {
			return 0, err
		}
		// Compensate for the sign extension of the %lo part.
		return int32((uint32(v) + 0x800) >> 12), nil
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		if v < -(1<<31) || v > (1<<32)-1 {
			return 0, fmt.Errorf("immediate %s out of 32-bit range", s)
		}
		return int32(uint32(v)), nil
	}
	if labels != nil {
		if a, ok := labels[s]; ok {
			return int32(a), nil
		}
	}
	return 0, fmt.Errorf("cannot parse immediate %q", s)
}

func fitsImm12(v int32) bool { return v >= -2048 && v < 2048 }

// parseMem parses "imm(reg)" operands.
func parseMem(s string, labels map[string]uint32) (int32, int, error) {
	open := strings.Index(s, "(")
	close_ := strings.LastIndex(s, ")")
	if open < 0 || close_ < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		immStr = "0"
	}
	imm, err := parseImm(immStr, labels)
	if err != nil {
		return 0, 0, err
	}
	reg, err := parseReg(strings.TrimSpace(s[open+1 : close_]))
	if err != nil {
		return 0, 0, err
	}
	return imm, reg, nil
}

func encodeItem(mnem string, args []string, addr uint32, labels map[string]uint32) ([]uint32, error) {
	switch mnem {
	case ".word":
		var ws []uint32
		for _, a := range args {
			v, err := parseImm(a, labels)
			if err != nil {
				return nil, err
			}
			ws = append(ws, uint32(v))
		}
		return ws, nil
	case "nop":
		return []uint32{encodeI(0x13, 0, 0, 0, 0)}, nil
	case "mv":
		rd, rs, err := twoRegs(args)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeI(0x13, 0, rd, rs, 0)}, nil
	case "not":
		rd, rs, err := twoRegs(args)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeI(0x13, 4, rd, rs, -1)}, nil
	case "neg":
		rd, rs, err := twoRegs(args)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeR(0x33, 0, 0x20, rd, 0, rs)}, nil
	case "seqz":
		rd, rs, err := twoRegs(args)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeI(0x13, 3, rd, rs, 1)}, nil
	case "snez":
		rd, rs, err := twoRegs(args)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeR(0x33, 3, 0, rd, 0, rs)}, nil
	case "li":
		if len(args) != 2 {
			return nil, fmt.Errorf("li needs 2 args")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		v, err := parseImm(args[1], labels)
		if err != nil {
			return nil, err
		}
		if fitsImm12(v) {
			return []uint32{encodeI(0x13, 0, rd, 0, v)}, nil
		}
		hi := (uint32(v) + 0x800) & 0xfffff000
		lo := int32(uint32(v)-hi) << 20 >> 20
		return []uint32{encodeU(0x37, rd, hi), encodeI(0x13, 0, rd, rd, lo)}, nil
	case "la":
		if len(args) != 2 {
			return nil, fmt.Errorf("la needs 2 args")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		v, err := parseImm(args[1], labels)
		if err != nil {
			return nil, err
		}
		hi := (uint32(v) + 0x800) & 0xfffff000
		lo := int32(uint32(v)-hi) << 20 >> 20
		return []uint32{encodeU(0x37, rd, hi), encodeI(0x13, 0, rd, rd, lo)}, nil
	case "j":
		if len(args) != 1 {
			return nil, fmt.Errorf("j needs 1 arg")
		}
		off, err := branchOffset(args[0], addr, labels)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeJ(0x6f, 0, off)}, nil
	case "jal":
		// Accept both "jal label" (rd=ra) and "jal rd, label".
		switch len(args) {
		case 1:
			off, err := branchOffset(args[0], addr, labels)
			if err != nil {
				return nil, err
			}
			return []uint32{encodeJ(0x6f, 1, off)}, nil
		case 2:
			rd, err := parseReg(args[0])
			if err != nil {
				return nil, err
			}
			off, err := branchOffset(args[1], addr, labels)
			if err != nil {
				return nil, err
			}
			return []uint32{encodeJ(0x6f, rd, off)}, nil
		default:
			return nil, fmt.Errorf("jal needs 1 or 2 args")
		}
	case "call":
		if len(args) != 1 {
			return nil, fmt.Errorf("call needs 1 arg")
		}
		target, err := parseImm(args[0], labels)
		if err != nil {
			return nil, err
		}
		// auipc ra, hi; jalr ra, lo(ra)
		rel := uint32(target) - addr
		hi := (rel + 0x800) & 0xfffff000
		lo := int32(rel-hi) << 20 >> 20
		return []uint32{encodeU(0x17, 1, hi), encodeI(0x67, 0, 1, 1, lo)}, nil
	case "jr":
		if len(args) != 1 {
			return nil, fmt.Errorf("jr needs 1 arg")
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		return []uint32{encodeI(0x67, 0, 0, rs, 0)}, nil
	case "ret":
		return []uint32{encodeI(0x67, 0, 0, 1, 0)}, nil
	case "beqz", "bnez":
		if len(args) != 2 {
			return nil, fmt.Errorf("%s needs 2 args", mnem)
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		off, err := branchOffset(args[1], addr, labels)
		if err != nil {
			return nil, err
		}
		f3 := uint32(0)
		if mnem == "bnez" {
			f3 = 1
		}
		return []uint32{encodeB(0x63, f3, rs, 0, off)}, nil
	case "ecall":
		return []uint32{0x00000073}, nil
	case "ebreak":
		return []uint32{0x00100073}, nil
	case "lui", "auipc":
		if len(args) != 2 {
			return nil, fmt.Errorf("%s needs 2 args", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		v, err := parseImm(args[1], labels)
		if err != nil {
			return nil, err
		}
		op := uint32(0x37)
		if mnem == "auipc" {
			op = 0x17
		}
		// Accept both raw 20-bit values and full 32-bit constants.
		imm := uint32(v)
		if imm < 1<<20 {
			imm <<= 12
		}
		return []uint32{encodeU(op, rd, imm&0xfffff000)}, nil
	}

	// Branches.
	if f3, ok := map[string]uint32{"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}[mnem]; ok {
		if len(args) != 3 {
			return nil, fmt.Errorf("%s needs 3 args", mnem)
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return nil, err
		}
		off, err := branchOffset(args[2], addr, labels)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeB(0x63, f3, rs1, rs2, off)}, nil
	}

	// Loads.
	if f3, ok := map[string]uint32{"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}[mnem]; ok {
		if len(args) != 2 {
			return nil, fmt.Errorf("%s needs 2 args", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		imm, rs1, err := parseMem(args[1], labels)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeI(0x03, f3, rd, rs1, imm)}, nil
	}

	// Stores.
	if f3, ok := map[string]uint32{"sb": 0, "sh": 1, "sw": 2}[mnem]; ok {
		if len(args) != 2 {
			return nil, fmt.Errorf("%s needs 2 args", mnem)
		}
		rs2, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		imm, rs1, err := parseMem(args[1], labels)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeS(0x23, f3, rs1, rs2, imm)}, nil
	}

	// ALU immediates.
	if f3, ok := map[string]uint32{"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}[mnem]; ok {
		rd, rs1, imm, err := regRegImm(args, labels)
		if err != nil {
			return nil, err
		}
		if !fitsImm12(imm) {
			return nil, fmt.Errorf("%s immediate %d out of range", mnem, imm)
		}
		return []uint32{encodeI(0x13, f3, rd, rs1, imm)}, nil
	}
	// Shift immediates.
	if info, ok := map[string]struct{ f3, f7 uint32 }{
		"slli": {1, 0}, "srli": {5, 0}, "srai": {5, 0x20},
	}[mnem]; ok {
		rd, rs1, imm, err := regRegImm(args, labels)
		if err != nil {
			return nil, err
		}
		if imm < 0 || imm > 31 {
			return nil, fmt.Errorf("%s shift amount %d out of range", mnem, imm)
		}
		return []uint32{encodeR(0x13, info.f3, info.f7, rd, rs1, int(imm))}, nil
	}
	// Register-register ALU and M extension.
	if info, ok := map[string]struct{ f3, f7 uint32 }{
		"add": {0, 0}, "sub": {0, 0x20}, "sll": {1, 0}, "slt": {2, 0},
		"sltu": {3, 0}, "xor": {4, 0}, "srl": {5, 0}, "sra": {5, 0x20},
		"or": {6, 0}, "and": {7, 0},
		"mul": {0, 1}, "mulh": {1, 1}, "mulhsu": {2, 1}, "mulhu": {3, 1},
		"div": {4, 1}, "divu": {5, 1}, "rem": {6, 1}, "remu": {7, 1},
	}[mnem]; ok {
		if len(args) != 3 {
			return nil, fmt.Errorf("%s needs 3 args", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return nil, err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return nil, err
		}
		return []uint32{encodeR(0x33, info.f3, info.f7, rd, rs1, rs2)}, nil
	}
	return nil, fmt.Errorf("unknown mnemonic %q", mnem)
}

func twoRegs(args []string) (int, int, error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("need 2 register args")
	}
	rd, err := parseReg(args[0])
	if err != nil {
		return 0, 0, err
	}
	rs, err := parseReg(args[1])
	if err != nil {
		return 0, 0, err
	}
	return rd, rs, nil
}

func regRegImm(args []string, labels map[string]uint32) (int, int, int32, error) {
	if len(args) != 3 {
		return 0, 0, 0, fmt.Errorf("need rd, rs1, imm")
	}
	rd, err := parseReg(args[0])
	if err != nil {
		return 0, 0, 0, err
	}
	rs1, err := parseReg(args[1])
	if err != nil {
		return 0, 0, 0, err
	}
	imm, err := parseImm(args[2], labels)
	if err != nil {
		return 0, 0, 0, err
	}
	return rd, rs1, imm, nil
}

func branchOffset(arg string, addr uint32, labels map[string]uint32) (int32, error) {
	target, err := parseImm(arg, labels)
	if err != nil {
		return 0, err
	}
	return int32(uint32(target) - addr), nil
}

func encodeU(op uint32, rd int, imm uint32) uint32 {
	return imm&0xfffff000 | uint32(rd)<<7 | op
}

func encodeI(op, f3 uint32, rd, rs1 int, imm int32) uint32 {
	return uint32(imm)<<20 | uint32(rs1)<<15 | f3<<12 | uint32(rd)<<7 | op
}

func encodeR(op, f3, f7 uint32, rd, rs1, rs2 int) uint32 {
	return f7<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | f3<<12 | uint32(rd)<<7 | op
}

func encodeS(op, f3 uint32, rs1, rs2 int, imm int32) uint32 {
	u := uint32(imm)
	return ((u>>5)&0x7f)<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | f3<<12 | (u&0x1f)<<7 | op
}

func encodeB(op, f3 uint32, rs1, rs2 int, off int32) uint32 {
	u := uint32(off)
	return ((u>>12)&1)<<31 | ((u>>5)&0x3f)<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 |
		f3<<12 | ((u>>1)&0xf)<<8 | ((u>>11)&1)<<7 | op
}

func encodeJ(op uint32, rd int, off int32) uint32 {
	u := uint32(off)
	return ((u>>20)&1)<<31 | ((u>>1)&0x3ff)<<21 | ((u>>11)&1)<<20 | ((u>>12)&0xff)<<12 |
		uint32(rd)<<7 | op
}
