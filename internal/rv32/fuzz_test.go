package rv32

import (
	"fmt"
	"testing"
	"testing/quick"
)

// decodeProperty is the shared invariant behind both FuzzDecode and the
// quick smoke test: an arbitrary word either fails to decode or yields a
// well-formed instruction whose disassembly does not panic.
func decodeProperty(word uint32) error {
	in, err := Decode(word)
	if err != nil {
		return nil
	}
	if in.Op == OpInvalid {
		return fmt.Errorf("word %#08x decoded without error to OpInvalid", word)
	}
	if in.Rd < 0 || in.Rd > 31 || in.Rs1 < 0 || in.Rs1 > 31 || in.Rs2 < 0 || in.Rs2 > 31 {
		return fmt.Errorf("word %#08x decoded to out-of-range register (rd=%d rs1=%d rs2=%d)",
			word, in.Rd, in.Rs1, in.Rs2)
	}
	_ = in.Disasm()
	_ = in.DisasmAt(0x1000)
	// Decode must be deterministic.
	again, err2 := Decode(word)
	if err2 != nil || again != in {
		return fmt.Errorf("word %#08x: second decode differs (%v, %v)", word, again, err2)
	}
	return nil
}

// FuzzDecode is the native fuzz target; its seed corpus lives under
// testdata/fuzz/FuzzDecode. Run with `go test -fuzz=FuzzDecode ./internal/rv32`.
func FuzzDecode(f *testing.F) {
	// One representative of every major encoding format, plus junk.
	for _, word := range []uint32{
		0x00000013, // addi x0, x0, 0 (I-type nop)
		0x003100b3, // add x1, x2, x3 (R-type)
		0x000000b7, // lui x1, 0 (U-type)
		0x0000006f, // jal x0, 0 (J-type)
		0x00012083, // lw x1, 0(x2) (load)
		0x00112023, // sw x1, 0(x2) (S-type)
		0x00208463, // beq x1, x2, 8 (B-type)
		0x00000073, // ecall (system)
		0x0ff0000f, // fence
		0x40315093, // srai x1, x2, 3 (shift with funct7 bit)
		0x00000000, // all-zero (invalid)
		0xffffffff, // all-ones (invalid)
		0x00000001, // compressed-looking low bits
	} {
		f.Add(word)
	}
	f.Fuzz(func(t *testing.T, word uint32) {
		if err := decodeProperty(word); err != nil {
			t.Error(err)
		}
	})
}

// TestDecodeSeedCorpusProperty pins the seed encodings as decodable where
// expected, so corpus rot is caught even without -fuzz.
func TestDecodeSeedCorpusProperty(t *testing.T) {
	valid := []uint32{0x00000013, 0x003100b3, 0x000000b7, 0x0000006f, 0x00012083}
	for _, w := range valid {
		if _, err := Decode(w); err != nil {
			t.Errorf("seed %#08x no longer decodes: %v", w, err)
		}
	}
	for _, w := range []uint32{0x00000000, 0xffffffff} {
		if _, err := Decode(w); err == nil {
			t.Errorf("seed %#08x unexpectedly decodes", w)
		}
	}
}

// quickDecodeSmoke runs the shared property through testing/quick; kept so
// plain `go test` still exercises 5000 random words without -fuzz.
func quickDecodeSmoke(maxCount int) error {
	prop := func(word uint32) bool { return decodeProperty(word) == nil }
	return quick.Check(prop, &quick.Config{MaxCount: maxCount})
}
