package ring

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"reveal/internal/modular"
)

// Parameters is a validated ring configuration: a power-of-two degree and a
// chain of distinct NTT-friendly primes. It is the single place degree and
// modulus-chain invariants are checked; every backend and every Context is
// built from an already-validated Parameters value, so the kernels
// themselves never re-validate.
type Parameters struct {
	// N is the polynomial degree, a power of two >= 2.
	N int
	// Moduli is the coefficient-modulus chain q_0 ... q_{k-1}.
	Moduli []uint64
	// LogN is log2(N).
	LogN int
}

// NewParameters validates a degree/modulus-chain pair: n must be a power of
// two >= 2, and every modulus must be a distinct prime below 2^61 with
// q == 1 (mod 2n) so a primitive 2n-th root of unity exists (the
// NTT-friendliness condition for the negacyclic transform).
func NewParameters(n int, moduli []uint64) (*Parameters, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: degree %d must be a power of two ≥ 2", n)
	}
	if len(moduli) == 0 {
		return nil, fmt.Errorf("ring: at least one modulus required")
	}
	seen := map[uint64]bool{}
	for _, q := range moduli {
		if err := modular.ValidateModulus(q); err != nil {
			return nil, err
		}
		if !modular.IsPrime(q) {
			return nil, fmt.Errorf("ring: modulus %d is not prime", q)
		}
		if (q-1)%uint64(2*n) != 0 {
			return nil, fmt.Errorf("ring: modulus %d is not ≡ 1 mod 2n=%d", q, 2*n)
		}
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
	}
	return &Parameters{
		N:      n,
		Moduli: append([]uint64(nil), moduli...),
		LogN:   bits.TrailingZeros(uint(n)),
	}, nil
}

// LegacyQ is the single 27-bit modulus of the paper's parameter set
// (SEAL v3.2 defaults for n=1024): the configuration every selftest digest
// and committed golden vector is pinned on.
const LegacyQ uint64 = 132120577

// ladderBits lists the SEAL-default coefficient-modulus bit sizes per
// degree (the homomorphic encryption standard's 128-bit-security chains:
// 27, 54, 109 and 218 total bits for n = 1024..8192).
var ladderBits = map[int][]int{
	1024: {27},
	2048: {54},
	4096: {36, 36, 37},
	8192: {43, 43, 44, 44, 44},
}

// ladderCache memoizes the generated ladder chains; prime generation by
// downward scan is deterministic, so the cache only saves repeated work.
var (
	ladderMu    sync.Mutex
	ladderCache = map[int]*Parameters{}
)

// LadderDegrees returns the degrees the SEAL parameter ladder covers, in
// increasing order.
func LadderDegrees() []int {
	ds := make([]int, 0, len(ladderBits))
	for n := range ladderBits {
		ds = append(ds, n)
	}
	sort.Ints(ds)
	return ds
}

// LadderParams returns the SEAL-default ring parameters for degree n. The
// n=1024 entry is the paper's legacy single-prime configuration; larger
// degrees get multi-prime chains generated exactly the way SEAL's
// CoeffModulus::Create scans for NTT-friendly primes — largest candidate
// below 2^bits congruent to 1 mod 2n, walking down. Generation is fully
// deterministic, and the chain order follows the declared bit-size order
// (never a map walk), so residue layouts are reproducible across processes.
func LadderParams(n int) (*Parameters, error) {
	sizes, ok := ladderBits[n]
	if !ok {
		return nil, fmt.Errorf("ring: no ladder parameters for degree %d (have %v)", n, LadderDegrees())
	}
	ladderMu.Lock()
	defer ladderMu.Unlock()
	if p, ok := ladderCache[n]; ok {
		return p, nil
	}
	var moduli []uint64
	if n == 1024 {
		moduli = []uint64{LegacyQ}
	} else {
		// Walk the size list in declared order, grouping equal adjacent
		// sizes into one GeneratePrimes call so distinct primes come out
		// of a single downward scan.
		for i := 0; i < len(sizes); {
			j := i
			for j < len(sizes) && sizes[j] == sizes[i] {
				j++
			}
			ps, err := modular.GeneratePrimes(sizes[i], uint64(2*n), j-i)
			if err != nil {
				return nil, fmt.Errorf("ring: generating %d-bit ladder primes for n=%d: %w", sizes[i], n, err)
			}
			moduli = append(moduli, ps...)
			i = j
		}
	}
	p, err := NewParameters(n, moduli)
	if err != nil {
		return nil, err
	}
	ladderCache[n] = p
	return p, nil
}

// mustLadder panics on a ladder generation failure; the ladder entries are
// static configurations, so failure is a programming error.
func mustLadder(n int) *Parameters {
	p, err := LadderParams(n)
	if err != nil {
		panic(err)
	}
	return p
}

// ParamsN1024 returns the paper's legacy configuration: n=1024 with the
// single 27-bit prime 132120577.
func ParamsN1024() *Parameters { return mustLadder(1024) }

// ParamsN2048 returns the SEAL default for n=2048: one 54-bit prime.
func ParamsN2048() *Parameters { return mustLadder(2048) }

// ParamsN4096 returns the SEAL default for n=4096: a 36+36+37-bit chain.
func ParamsN4096() *Parameters { return mustLadder(4096) }

// ParamsN8192 returns the SEAL default for n=8192: a 43+43+44+44+44-bit
// chain.
func ParamsN8192() *Parameters { return mustLadder(8192) }
