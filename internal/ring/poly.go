package ring

import (
	"fmt"

	"reveal/internal/modular"
)

// Poly is an element of R_q in RNS representation: Coeffs[j][i] is the
// i-th coefficient modulo the j-th prime. InNTT marks the evaluation
// (NTT) domain.
type Poly struct {
	ctx    *Context
	Coeffs [][]uint64
	InNTT  bool
}

// Context returns the ring context this polynomial belongs to.
func (p *Poly) Context() *Context { return p.ctx }

// Clone returns a deep copy of p.
func (p *Poly) Clone() *Poly {
	c := p.ctx.NewPoly()
	for j := range p.Coeffs {
		copy(c.Coeffs[j], p.Coeffs[j])
	}
	c.InNTT = p.InNTT
	return c
}

// Copy overwrites p with the contents of src (same context required).
func (p *Poly) Copy(src *Poly) {
	for j := range p.Coeffs {
		copy(p.Coeffs[j], src.Coeffs[j])
	}
	p.InNTT = src.InNTT
}

// Zero resets all coefficients to zero, staying in the current domain.
func (p *Poly) Zero() {
	for j := range p.Coeffs {
		for i := range p.Coeffs[j] {
			p.Coeffs[j][i] = 0
		}
	}
}

// Equal reports whether p and other hold identical representations.
func (p *Poly) Equal(other *Poly) bool {
	if p.InNTT != other.InNTT || len(p.Coeffs) != len(other.Coeffs) {
		return false
	}
	for j := range p.Coeffs {
		if len(p.Coeffs[j]) != len(other.Coeffs[j]) {
			return false
		}
		for i := range p.Coeffs[j] {
			if p.Coeffs[j][i] != other.Coeffs[j][i] {
				return false
			}
		}
	}
	return true
}

func (c *Context) checkSameDomain(op string, ps ...*Poly) {
	for _, p := range ps[1:] {
		if p.InNTT != ps[0].InNTT {
			panic(fmt.Sprintf("ring: %s: operands in different domains", op))
		}
	}
}

// Add sets out = a + b (component-wise, any domain, but both the same).
func (c *Context) Add(a, b, out *Poly) {
	c.checkSameDomain("Add", a, b)
	for j := range c.Moduli {
		c.backend.AddVec(j, a.Coeffs[j], b.Coeffs[j], out.Coeffs[j])
	}
	out.InNTT = a.InNTT
}

// Sub sets out = a - b.
func (c *Context) Sub(a, b, out *Poly) {
	c.checkSameDomain("Sub", a, b)
	for j := range c.Moduli {
		c.backend.SubVec(j, a.Coeffs[j], b.Coeffs[j], out.Coeffs[j])
	}
	out.InNTT = a.InNTT
}

// Neg sets out = -a.
func (c *Context) Neg(a, out *Poly) {
	for j := range c.Moduli {
		c.backend.NegVec(j, a.Coeffs[j], out.Coeffs[j])
	}
	out.InNTT = a.InNTT
}

// MulCoeffwise sets out = a ⊙ b (component-wise product). For ring
// multiplication both operands must be in the NTT domain.
func (c *Context) MulCoeffwise(a, b, out *Poly) {
	c.checkSameDomain("MulCoeffwise", a, b)
	for j := range c.Moduli {
		c.backend.MulVec(j, a.Coeffs[j], b.Coeffs[j], out.Coeffs[j])
	}
	out.InNTT = a.InNTT
}

// MulPoly sets out = a * b in R_q via NTT. Operands must be in coefficient
// representation; they are restored before returning. out ends in
// coefficient representation.
func (c *Context) MulPoly(a, b, out *Poly) {
	an := a.Clone()
	bn := b.Clone()
	c.NTT(an)
	c.NTT(bn)
	c.MulCoeffwise(an, bn, out)
	c.INTT(out)
}

// MulScalar sets out = s * a for a scalar s (reduced per modulus).
func (c *Context) MulScalar(a *Poly, s uint64, out *Poly) {
	for j, q := range c.Moduli {
		c.backend.MulScalarVec(j, a.Coeffs[j], s%q, out.Coeffs[j])
	}
	out.InNTT = a.InNTT
}

// AddScalar sets out = a + s (s added to the constant coefficient if in
// coefficient domain; to every slot if in NTT domain the caller is
// responsible for meaning). Here it adds s to every residue of coefficient
// 0 in coefficient representation.
func (c *Context) AddScalar(a *Poly, s uint64, out *Poly) {
	out.Copy(a)
	for j, q := range c.Moduli {
		out.Coeffs[j][0] = modular.Add(out.Coeffs[j][0], s%q, q)
	}
}

// SetSigned fills p (coefficient domain) from centered signed coefficients;
// values[i] may be any int64 with |v| < min(q_j).
func (c *Context) SetSigned(p *Poly, values []int64) error {
	if len(values) != c.N {
		return fmt.Errorf("ring: got %d coefficients, want %d", len(values), c.N)
	}
	for j, q := range c.Moduli {
		for i, v := range values {
			p.Coeffs[j][i] = modular.FromCentered(v, q)
		}
	}
	p.InNTT = false
	return nil
}

// InfNormCentered returns the infinity norm of p using the centered
// representation with respect to the full modulus Q. Only meaningful in
// coefficient representation; for multi-prime chains the coefficient is
// CRT-composed first.
func (c *Context) InfNormCentered(p *Poly) uint64 {
	if p.InNTT {
		panic("ring: InfNormCentered requires coefficient representation")
	}
	if len(c.Moduli) == 1 {
		q := c.Moduli[0]
		var max uint64
		for _, x := range p.Coeffs[0] {
			v := modular.CenteredRep(x, q)
			if v < 0 {
				v = -v
			}
			if uint64(v) > max {
				max = uint64(v)
			}
		}
		return max
	}
	half := c.BigQ()
	half.Rsh(half, 1)
	var max uint64
	for i := 0; i < c.N; i++ {
		v := c.ComposeCRT(p, i)
		if v.Cmp(half) > 0 {
			v.Sub(c.bigQ, v)
		}
		if v.IsUint64() && v.Uint64() > max {
			max = v.Uint64()
		} else if !v.IsUint64() {
			max = ^uint64(0)
		}
	}
	return max
}

// Automorphism sets out = p(x^g) in R_q for odd g (the Galois action
// underlying BFV slot rotations). Both polynomials must be in coefficient
// representation. Coefficient i of p lands at exponent i·g mod 2n, negated
// when the exponent wraps past n (x^n = -1).
func (c *Context) Automorphism(p *Poly, g uint64, out *Poly) error {
	if p.InNTT || out.InNTT {
		return fmt.Errorf("ring: Automorphism requires coefficient representation")
	}
	if g%2 == 0 {
		return fmt.Errorf("ring: Galois element %d must be odd", g)
	}
	if p == out {
		p = p.Clone()
	}
	twoN := uint64(2 * c.N)
	g %= twoN
	out.Zero()
	for j, q := range c.Moduli {
		pj, oj := p.Coeffs[j], out.Coeffs[j]
		for i := 0; i < c.N; i++ {
			e := (uint64(i) * g) % twoN
			v := pj[i]
			if e < uint64(c.N) {
				oj[e] = modular.Add(oj[e], v, q)
			} else {
				oj[e-uint64(c.N)] = modular.Sub(oj[e-uint64(c.N)], v, q)
			}
		}
	}
	out.InNTT = false
	return nil
}
