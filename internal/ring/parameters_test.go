package ring

import (
	"math/bits"
	"testing"
)

func TestNewParametersRejectionPaths(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		moduli []uint64
	}{
		{"zero degree", 0, []uint64{12289}},
		{"degree one", 1, []uint64{12289}},
		{"non-power-of-two", 48, []uint64{12289}},
		{"negative-ish huge odd", 3, []uint64{12289}},
		{"empty moduli", 64, nil},
		{"zero modulus", 64, []uint64{0}},
		{"one modulus", 64, []uint64{1}},
		{"oversized modulus (62-bit)", 64, []uint64{1 << 62}},
		{"composite", 64, []uint64{12289 * 3}},
		{"prime but not 1 mod 2n", 64, []uint64{97}},
		{"duplicate", 64, []uint64{12289, 12289}},
		{"second modulus bad", 64, []uint64{12289, 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewParameters(tc.n, tc.moduli); err == nil {
				t.Fatalf("NewParameters(%d, %v) accepted invalid input", tc.n, tc.moduli)
			}
		})
	}
}

func TestNewParametersAccepts(t *testing.T) {
	p, err := NewParameters(64, []uint64{12289, 257})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 64 || p.LogN != 6 || len(p.Moduli) != 2 {
		t.Fatalf("unexpected shape: %+v", p)
	}
	// The constructor must copy the caller's slice.
	src := []uint64{12289}
	p2, err := NewParameters(64, src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 0
	if p2.Moduli[0] != 12289 {
		t.Fatal("NewParameters aliased the caller's moduli slice")
	}
}

// TestLadderShape pins the SEAL-default chain shapes: degree, chain length,
// and per-prime bit widths — plus determinism across calls.
func TestLadderShape(t *testing.T) {
	wantBits := map[int][]int{
		1024: {27},
		2048: {54},
		4096: {36, 36, 37},
		8192: {43, 43, 44, 44, 44},
	}
	degrees := LadderDegrees()
	if len(degrees) != len(wantBits) {
		t.Fatalf("LadderDegrees() = %v", degrees)
	}
	for _, n := range degrees {
		p, err := LadderParams(n)
		if err != nil {
			t.Fatalf("LadderParams(%d): %v", n, err)
		}
		if p.N != n {
			t.Fatalf("n=%d: got degree %d", n, p.N)
		}
		want := wantBits[n]
		if len(p.Moduli) != len(want) {
			t.Fatalf("n=%d: chain length %d, want %d", n, len(p.Moduli), len(want))
		}
		for i, q := range p.Moduli {
			if got := bits.Len64(q); got != want[i] {
				t.Fatalf("n=%d prime %d: %d bits (%d), want %d", n, i, got, q, want[i])
			}
			if (q-1)%uint64(2*n) != 0 {
				t.Fatalf("n=%d prime %d=%d not NTT-friendly", n, i, q)
			}
		}
		// Deterministic: a second call returns the identical chain.
		p2, err := LadderParams(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Moduli {
			if p.Moduli[i] != p2.Moduli[i] {
				t.Fatalf("n=%d: ladder generation not deterministic at index %d", n, i)
			}
		}
	}
	if ParamsN1024().Moduli[0] != LegacyQ {
		t.Fatalf("ParamsN1024 modulus %d, want legacy %d", ParamsN1024().Moduli[0], LegacyQ)
	}
	if _, err := LadderParams(512); err == nil {
		t.Fatal("LadderParams accepted an unsupported degree")
	}
	// The named accessors agree with LadderParams.
	for _, tc := range []struct {
		n int
		p *Parameters
	}{{2048, ParamsN2048()}, {4096, ParamsN4096()}, {8192, ParamsN8192()}} {
		if tc.p.N != tc.n {
			t.Fatalf("ParamsN%d returned degree %d", tc.n, tc.p.N)
		}
	}
}

// TestBitReverseInvolution: reversing twice is the identity, and the
// reversal permutes the index range (twiddle-table layout property).
func TestBitReverseInvolution(t *testing.T) {
	for _, logN := range []int{1, 4, 10, 13} {
		n := uint32(1) << logN
		seen := make([]bool, n)
		for x := uint32(0); x < n; x++ {
			r := BitReverse(x, logN)
			if r >= n {
				t.Fatalf("logN=%d: BitReverse(%d) = %d out of range", logN, x, r)
			}
			if BitReverse(r, logN) != x {
				t.Fatalf("logN=%d: BitReverse not an involution at %d", logN, x)
			}
			if seen[r] {
				t.Fatalf("logN=%d: BitReverse not a permutation, %d hit twice", logN, r)
			}
			seen[r] = true
		}
	}
}
