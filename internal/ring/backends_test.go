package ring_test

// Cross-backend differential test matrix: every registered backend is run
// over identical workloads and compared coefficient-by-coefficient — a
// mismatch reports the first differing (modulus, coefficient) index. The
// ladder golden vectors are cross-checked against the math/big reference
// before the pinned digest is compared, so a golden file can never capture
// a wrong transform.

import (
	"fmt"
	"testing"

	"reveal/internal/ring"
	"reveal/internal/testkit"
)

// forEachBackend runs fn once per registered backend as a subtest — the
// iteration set of the differential matrix.
func forEachBackend(t *testing.T, fn func(t *testing.T, backend string)) {
	t.Helper()
	for _, name := range ring.BackendNames() {
		name := name
		t.Run("backend="+name, func(t *testing.T) { fn(t, name) })
	}
}

// newCtxOn builds a context for (n, moduli) on the named backend.
func newCtxOn(t testing.TB, backend string, n int, moduli []uint64) *ring.Context {
	t.Helper()
	params, err := ring.NewParameters(n, moduli)
	if err != nil {
		t.Fatalf("NewParameters(%d, %v): %v", n, moduli, err)
	}
	ctx, err := ring.NewContextFor(params, backend)
	if err != nil {
		t.Fatalf("NewContextFor(%q): %v", backend, err)
	}
	return ctx
}

// firstMismatch returns the first (modulus, coefficient) index where two
// polynomials differ, or ok=true when they are identical.
func firstMismatch(a, b *ring.Poly) (j, i int, ok bool) {
	for j := range a.Coeffs {
		for i := range a.Coeffs[j] {
			if a.Coeffs[j][i] != b.Coeffs[j][i] {
				return j, i, false
			}
		}
	}
	return 0, 0, true
}

func TestBackendRegistry(t *testing.T) {
	names := ring.BackendNames()
	want := map[string]bool{ring.ReferenceBackendName: false, ring.RNSBackendName: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("backend %q not registered (have %v)", n, names)
		}
	}
	if _, err := ring.NewBackend("no-such-backend", ring.ParamsN1024()); err == nil {
		t.Fatal("NewBackend accepted an unknown name")
	}
	ctx := newCtxOn(t, ring.RNSBackendName, 64, []uint64{12289})
	if got := ctx.Backend().Name(); got != ring.RNSBackendName {
		t.Fatalf("Backend().Name() = %q, want %q", got, ring.RNSBackendName)
	}
	if ctx.Params().N != 64 {
		t.Fatalf("Params().N = %d, want 64", ctx.Params().N)
	}
}

// TestCrossBackendByteEquality is the core of the matrix: both backends run
// the same seeded NTT / multiply / vector-op workload and every output must
// be byte-identical (the canonical-residue contract that keeps the selftest
// digest backend-independent). Ladder primes with p ≡ 1 mod 2^14 are also
// NTT-friendly at the small matrix degrees, so the real SEAL moduli get
// exercised here without paying full-degree cost.
func TestCrossBackendByteEquality(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		moduli []uint64
	}{
		{"n64/legacy-q", 64, []uint64{ring.LegacyQ}},
		{"n32/two-primes", 32, []uint64{12289, 257}},
		{"n128/ladder-n4096-chain", 128, ring.ParamsN4096().Moduli},
		{"n256/ladder-n8192-chain", 256, ring.ParamsN8192().Moduli},
		{"n64/54bit", 64, ring.ParamsN2048().Moduli},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ref := newCtxOn(t, ring.ReferenceBackendName, tc.n, tc.moduli)
			rns := newCtxOn(t, ring.RNSBackendName, tc.n, tc.moduli)
			r1 := testkit.NewRNG(0xD1FF)
			r2 := testkit.NewRNG(0xD1FF)
			for iter := 0; iter < 6; iter++ {
				aR, bR := r1.Poly(ref), r1.Poly(ref)
				aP, bP := r2.Poly(rns), r2.Poly(rns)
				if _, _, ok := firstMismatch(aR, aP); !ok {
					t.Fatal("seeded inputs diverged; RNG is context-dependent")
				}
				type op struct {
					name string
					run  func(ctx *ring.Context, a, b *ring.Poly) *ring.Poly
				}
				ops := []op{
					{"Add", func(ctx *ring.Context, a, b *ring.Poly) *ring.Poly {
						out := ctx.NewPoly()
						ctx.Add(a, b, out)
						return out
					}},
					{"Sub", func(ctx *ring.Context, a, b *ring.Poly) *ring.Poly {
						out := ctx.NewPoly()
						ctx.Sub(a, b, out)
						return out
					}},
					{"Neg", func(ctx *ring.Context, a, _ *ring.Poly) *ring.Poly {
						out := ctx.NewPoly()
						ctx.Neg(a, out)
						return out
					}},
					{"MulScalar", func(ctx *ring.Context, a, _ *ring.Poly) *ring.Poly {
						out := ctx.NewPoly()
						ctx.MulScalar(a, 0x9E3779B97F4A7C15, out)
						return out
					}},
					{"NTT", func(ctx *ring.Context, a, _ *ring.Poly) *ring.Poly {
						out := a.Clone()
						ctx.NTT(out)
						return out
					}},
					{"MulPoly", func(ctx *ring.Context, a, b *ring.Poly) *ring.Poly {
						out := ctx.NewPoly()
						ctx.MulPoly(a, b, out)
						return out
					}},
				}
				for _, o := range ops {
					gotR := o.run(ref, aR, bR)
					gotP := o.run(rns, aP, bP)
					if j, i, ok := firstMismatch(gotR, gotP); !ok {
						t.Fatalf("%s iter=%d %s: first mismatch at modulus %d coeff %d: reference=%d rns=%d",
							tc.name, iter, o.name, j, i, gotR.Coeffs[j][i], gotP.Coeffs[j][i])
					}
				}
			}
		})
	}
}

// TestLadderRoundTripFullDegree runs forward+inverse NTT and a sparse ring
// product at the real ladder degrees on both backends — full n=2048..8192
// transforms against the math/big negacyclic reference (sparse operand, so
// the schoolbook reference stays O(n·weight)).
func TestLadderRoundTripFullDegree(t *testing.T) {
	for _, n := range ring.LadderDegrees() {
		n := n
		params, err := ring.LadderParams(n)
		if err != nil {
			t.Fatalf("LadderParams(%d): %v", n, err)
		}
		forEachBackend(t, func(t *testing.T, be string) {
			t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
				ctx, err := ring.NewContextFor(params, be)
				if err != nil {
					t.Fatal(err)
				}
				r := testkit.NewRNG(0xAD0E + uint64(n))
				dense := r.Poly(ctx)
				orig := dense.Clone()
				ctx.NTT(dense)
				ctx.INTT(dense)
				if j, i, ok := firstMismatch(dense, orig); !ok {
					t.Fatalf("NTT round trip: first mismatch at modulus %d coeff %d", j, i)
				}
				// Sparse second operand: x^1 with coefficient c plus a
				// constant term, so the reference product is cheap.
				sparse := ctx.NewPoly()
				for j, q := range ctx.Moduli {
					sparse.Coeffs[j][0] = 3 % q
					sparse.Coeffs[j][1] = (q - 1) / 2
				}
				out := ctx.NewPoly()
				ctx.MulPoly(orig, sparse, out)
				for j, q := range ctx.Moduli {
					want, err := testkit.RefNegacyclicMul(orig.Coeffs[j], sparse.Coeffs[j], q)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if out.Coeffs[j][i] != want[i] {
							t.Fatalf("n=%d q=%d: MulPoly vs math/big reference: first mismatch at coeff %d: got %d want %d",
								n, q, i, out.Coeffs[j][i], want[i])
						}
					}
				}
			})
		})
	}
}

// goldenLadder pins per-parameter-set digests of a seeded NTT output and a
// seeded sparse ring product. The test recomputes the math/big reference
// for the product before comparing against the pinned digest, so the
// golden can only ever pin an already-cross-checked transform.
type goldenLadder struct {
	N         int      `json:"n"`
	Moduli    []uint64 `json:"moduli"`
	Seed      uint64   `json:"seed"`
	NTTDigest string   `json:"ntt_digest"`
	MulDigest string   `json:"mul_digest"`
}

func TestGoldenLadderVectors(t *testing.T) {
	for _, n := range ring.LadderDegrees() {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			params, err := ring.LadderParams(n)
			if err != nil {
				t.Fatal(err)
			}
			// Goldens are generated on the reference backend and must match
			// on every backend — run the whole check per backend.
			forEachBackend(t, func(t *testing.T, be string) {
				ctx, err := ring.NewContextFor(params, be)
				if err != nil {
					t.Fatal(err)
				}
				seed := uint64(0x90D0 + n)
				r := testkit.NewRNG(seed)
				a := r.Poly(ctx)
				sparse := ctx.NewPoly()
				for j, q := range ctx.Moduli {
					sparse.Coeffs[j][0] = 7 % q
					sparse.Coeffs[j][n/2] = q - 2
				}
				prod := ctx.NewPoly()
				ctx.MulPoly(a, sparse, prod)
				// Cross-check against math/big before touching the golden.
				for j, q := range ctx.Moduli {
					want, err := testkit.RefNegacyclicMul(a.Coeffs[j], sparse.Coeffs[j], q)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if prod.Coeffs[j][i] != want[i] {
							t.Fatalf("math/big cross-check failed at modulus %d coeff %d", j, i)
						}
					}
				}
				nttOut := a.Clone()
				ctx.NTT(nttOut)
				g := goldenLadder{
					N:         n,
					Moduli:    params.Moduli,
					Seed:      seed,
					NTTDigest: testkit.Digest(nttOut.Coeffs),
					MulDigest: testkit.Digest(prod.Coeffs),
				}
				testkit.Golden(t, fmt.Sprintf("testdata/golden_ladder_n%d.json", n), g)
			})
		})
	}
}
