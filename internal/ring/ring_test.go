package ring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"reveal/internal/modular"
)

// paperQ is the coefficient modulus of the paper's SEAL-128 smallest set.
const paperQ = 132120577

func testContext(t *testing.T, n int, moduli ...uint64) *Context {
	t.Helper()
	if len(moduli) == 0 {
		moduli = []uint64{paperQ}
	}
	ctx, err := NewContext(n, moduli)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func randPoly(rng *rand.Rand, ctx *Context) *Poly {
	p := ctx.NewPoly()
	for j, q := range ctx.Moduli {
		for i := range p.Coeffs[j] {
			p.Coeffs[j][i] = rng.Uint64() % q
		}
	}
	return p
}

func TestNewContextValidation(t *testing.T) {
	if _, err := NewContext(3, []uint64{paperQ}); err == nil {
		t.Error("non-power-of-two degree should fail")
	}
	if _, err := NewContext(1024, nil); err == nil {
		t.Error("empty moduli should fail")
	}
	if _, err := NewContext(1024, []uint64{6}); err == nil {
		t.Error("composite modulus should fail")
	}
	if _, err := NewContext(1024, []uint64{97}); err == nil {
		t.Error("97 is not ≡ 1 mod 2048, should fail")
	}
	if _, err := NewContext(1024, []uint64{paperQ, paperQ}); err == nil {
		t.Error("duplicate modulus should fail")
	}
	ctx := testContext(t, 1024)
	if ctx.Level() != 1 || ctx.N != 1024 {
		t.Error("context shape wrong")
	}
	if ctx.BigQ().Uint64() != paperQ {
		t.Error("BigQ wrong")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 64, 1024} {
		ctx := testContext(t, n)
		p := randPoly(rng, ctx)
		orig := p.Clone()
		ctx.NTT(p)
		if !p.InNTT {
			t.Fatal("InNTT flag not set")
		}
		if p.Equal(orig) {
			t.Fatal("NTT did not change representation (suspicious)")
		}
		ctx.INTT(p)
		if !p.Equal(orig) {
			t.Fatalf("n=%d: NTT round trip failed", n)
		}
		// Idempotent flags: NTT twice == once.
		ctx.NTT(p)
		q := p.Clone()
		ctx.NTT(p)
		if !p.Equal(q) {
			t.Fatal("double NTT should be a no-op when already in NTT domain")
		}
	}
}

// Negacyclic convolution reference: (a*b)[k] = sum a[i]b[j], x^n = -1.
func schoolbookNegacyclic(a, b []uint64, q uint64) []uint64 {
	n := len(a)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prod := modular.Mul(a[i], b[j], q)
			k := i + j
			if k < n {
				out[k] = modular.Add(out[k], prod, q)
			} else {
				out[k-n] = modular.Sub(out[k-n], prod, q)
			}
		}
	}
	return out
}

func TestMulPolyMatchesSchoolbook(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{4, 16, 64} {
		ctx := testContext(t, n)
		a := randPoly(rng, ctx)
		b := randPoly(rng, ctx)
		out := ctx.NewPoly()
		ctx.MulPoly(a, b, out)
		want := schoolbookNegacyclic(a.Coeffs[0], b.Coeffs[0], paperQ)
		for i := range want {
			if out.Coeffs[0][i] != want[i] {
				t.Fatalf("n=%d coeff %d: got %d want %d", n, i, out.Coeffs[0][i], want[i])
			}
		}
	}
}

func TestMulPolyIdentity(t *testing.T) {
	ctx := testContext(t, 64)
	rng := rand.New(rand.NewSource(5))
	a := randPoly(rng, ctx)
	one := ctx.NewPoly()
	one.Coeffs[0][0] = 1
	out := ctx.NewPoly()
	ctx.MulPoly(a, one, out)
	if !out.Equal(a) {
		t.Error("a * 1 != a")
	}
	// x^n = -1: multiplying by x^(n/2) twice negates.
	xHalf := ctx.NewPoly()
	xHalf.Coeffs[0][32] = 1
	t1 := ctx.NewPoly()
	t2 := ctx.NewPoly()
	ctx.MulPoly(a, xHalf, t1)
	ctx.MulPoly(t1, xHalf, t2)
	neg := ctx.NewPoly()
	ctx.Neg(a, neg)
	if !t2.Equal(neg) {
		t.Error("a * x^(n/2) * x^(n/2) != -a (negacyclic property broken)")
	}
}

func TestAddSubNegProperties(t *testing.T) {
	ctx := testContext(t, 16)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randPoly(rng, ctx)
		b := randPoly(rng, ctx)
		sum := ctx.NewPoly()
		back := ctx.NewPoly()
		ctx.Add(a, b, sum)
		ctx.Sub(sum, b, back)
		if !back.Equal(a) {
			return false
		}
		neg := ctx.NewPoly()
		zero := ctx.NewPoly()
		ctx.Neg(a, neg)
		ctx.Add(a, neg, zero)
		return zero.Equal(ctx.NewPoly())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// NTT is a ring homomorphism: NTT(a*b) = NTT(a) ⊙ NTT(b).
func TestConvolutionTheorem(t *testing.T) {
	ctx := testContext(t, 32)
	rng := rand.New(rand.NewSource(6))
	a := randPoly(rng, ctx)
	b := randPoly(rng, ctx)
	viaCoeff := ctx.NewPoly()
	ctx.MulPoly(a, b, viaCoeff)

	an, bn := a.Clone(), b.Clone()
	ctx.NTT(an)
	ctx.NTT(bn)
	viaNTT := ctx.NewPoly()
	ctx.MulCoeffwise(an, bn, viaNTT)
	ctx.INTT(viaNTT)
	if !viaNTT.Equal(viaCoeff) {
		t.Error("convolution theorem violated")
	}
}

func TestMulScalarAddScalar(t *testing.T) {
	ctx := testContext(t, 8)
	rng := rand.New(rand.NewSource(7))
	a := randPoly(rng, ctx)
	out := ctx.NewPoly()
	ctx.MulScalar(a, 3, out)
	for i := range out.Coeffs[0] {
		want := modular.Mul(a.Coeffs[0][i], 3, paperQ)
		if out.Coeffs[0][i] != want {
			t.Fatalf("MulScalar coeff %d wrong", i)
		}
	}
	ctx.AddScalar(a, 5, out)
	if out.Coeffs[0][0] != modular.Add(a.Coeffs[0][0], 5, paperQ) {
		t.Error("AddScalar constant term wrong")
	}
	if out.Coeffs[0][1] != a.Coeffs[0][1] {
		t.Error("AddScalar must not touch other coefficients")
	}
}

func TestSetSignedAndInfNorm(t *testing.T) {
	ctx := testContext(t, 8)
	p := ctx.NewPoly()
	vals := []int64{0, 1, -1, 41, -41, 2, -3, 7}
	if err := ctx.SetSigned(p, vals); err != nil {
		t.Fatal(err)
	}
	if p.Coeffs[0][2] != paperQ-1 {
		t.Error("negative coefficient not mapped to q-1")
	}
	if got := ctx.InfNormCentered(p); got != 41 {
		t.Errorf("InfNorm=%d want 41", got)
	}
	if err := ctx.SetSigned(p, []int64{1}); err == nil {
		t.Error("wrong length should fail")
	}
}

func TestComposeCRTMultiModulus(t *testing.T) {
	// Two NTT-friendly primes for n=16 (2n=32 | q-1).
	primes, err := modular.GeneratePrimes(20, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(16, primes)
	if err != nil {
		t.Fatal(err)
	}
	p := ctx.NewPoly()
	want := new(big.Int).SetUint64(123456789012)
	ctx.SetCoeffBig(p, 3, want)
	got := ctx.ComposeCRT(p, 3)
	if got.Cmp(new(big.Int).Mod(want, ctx.BigQ())) != 0 {
		t.Errorf("CRT round trip: got %v want %v", got, want)
	}
	// Round trip on random values below Q.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		v := new(big.Int).Rand(rng, ctx.BigQ())
		ctx.SetCoeffBig(p, 0, v)
		if ctx.ComposeCRT(p, 0).Cmp(v) != 0 {
			t.Fatalf("CRT round trip failed for %v", v)
		}
	}
}

func TestMultiModulusNTTRoundTrip(t *testing.T) {
	primes, err := modular.GeneratePrimes(30, 2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(1024, primes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	p := randPoly(rng, ctx)
	orig := p.Clone()
	ctx.NTT(p)
	ctx.INTT(p)
	if !p.Equal(orig) {
		t.Error("multi-modulus NTT round trip failed")
	}
}

func TestPolyCloneCopyZeroEqual(t *testing.T) {
	ctx := testContext(t, 8)
	rng := rand.New(rand.NewSource(10))
	a := randPoly(rng, ctx)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Coeffs[0][0] = (b.Coeffs[0][0] + 1) % paperQ
	if a.Equal(b) {
		t.Error("clone should be independent")
	}
	b.Copy(a)
	if !a.Equal(b) {
		t.Error("copy failed")
	}
	b.Zero()
	if !b.Equal(ctx.NewPoly()) {
		t.Error("zero failed")
	}
	if a.Context() != ctx {
		t.Error("context accessor wrong")
	}
	c := a.Clone()
	ctx.NTT(c)
	if a.Equal(c) {
		t.Error("different domains should not be equal")
	}
}

func TestCheckSameDomainPanics(t *testing.T) {
	ctx := testContext(t, 8)
	a := ctx.NewPoly()
	b := ctx.NewPoly()
	ctx.NTT(b)
	defer func() {
		if recover() == nil {
			t.Error("mixed-domain Add should panic")
		}
	}()
	ctx.Add(a, b, ctx.NewPoly())
}

func BenchmarkNTT1024(b *testing.B) {
	ctx, err := NewContext(1024, []uint64{paperQ})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	p := ctx.NewPoly()
	for i := range p.Coeffs[0] {
		p.Coeffs[0][i] = rng.Uint64() % paperQ
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InNTT = false
		ctx.NTT(p)
	}
}

func BenchmarkMulPoly1024(b *testing.B) {
	ctx, err := NewContext(1024, []uint64{paperQ})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	p := ctx.NewPoly()
	q := ctx.NewPoly()
	for i := 0; i < ctx.N; i++ {
		p.Coeffs[0][i] = rng.Uint64() % paperQ
		q.Coeffs[0][i] = rng.Uint64() % paperQ
	}
	out := ctx.NewPoly()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.MulPoly(p, q, out)
	}
}

// NTT is linear: NTT(a + s·b) = NTT(a) + s·NTT(b).
func TestNTTLinearityQuick(t *testing.T) {
	ctx := testContext(t, 32)
	prop := func(seed int64, sRaw uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		s := uint64(sRaw) % paperQ
		a := randPoly(rng, ctx)
		b := randPoly(rng, ctx)
		// lhs = NTT(a + s*b)
		sb := ctx.NewPoly()
		ctx.MulScalar(b, s, sb)
		sum := ctx.NewPoly()
		ctx.Add(a, sb, sum)
		ctx.NTT(sum)
		// rhs = NTT(a) + s*NTT(b)
		an, bn := a.Clone(), b.Clone()
		ctx.NTT(an)
		ctx.NTT(bn)
		sbn := ctx.NewPoly()
		ctx.MulScalar(bn, s, sbn)
		rhs := ctx.NewPoly()
		ctx.Add(an, sbn, rhs)
		return sum.Equal(rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Automorphisms compose: σ_g1(σ_g2(p)) = σ_{g1·g2 mod 2n}(p).
func TestAutomorphismComposition(t *testing.T) {
	ctx := testContext(t, 32)
	rng := rand.New(rand.NewSource(77))
	p := randPoly(rng, ctx)
	for _, pair := range [][2]uint64{{3, 5}, {7, 9}, {63, 3}} {
		g1, g2 := pair[0], pair[1]
		step1 := ctx.NewPoly()
		if err := ctx.Automorphism(p, g2, step1); err != nil {
			t.Fatal(err)
		}
		step2 := ctx.NewPoly()
		if err := ctx.Automorphism(step1, g1, step2); err != nil {
			t.Fatal(err)
		}
		direct := ctx.NewPoly()
		if err := ctx.Automorphism(p, g1*g2%uint64(2*ctx.N), direct); err != nil {
			t.Fatal(err)
		}
		if !step2.Equal(direct) {
			t.Fatalf("composition failed for g1=%d g2=%d", g1, g2)
		}
	}
	// Identity element.
	id := ctx.NewPoly()
	if err := ctx.Automorphism(p, 1, id); err != nil {
		t.Fatal(err)
	}
	if !id.Equal(p) {
		t.Error("σ_1 must be the identity")
	}
	// In-place aliasing is safe.
	alias := p.Clone()
	if err := ctx.Automorphism(alias, 3, alias); err != nil {
		t.Fatal(err)
	}
	want := ctx.NewPoly()
	if err := ctx.Automorphism(p, 3, want); err != nil {
		t.Fatal(err)
	}
	if !alias.Equal(want) {
		t.Error("aliased automorphism wrong")
	}
	// Validation.
	if err := ctx.Automorphism(p, 2, ctx.NewPoly()); err == nil {
		t.Error("even Galois element should fail")
	}
	nttP := p.Clone()
	ctx.NTT(nttP)
	if err := ctx.Automorphism(nttP, 3, ctx.NewPoly()); err == nil {
		t.Error("NTT-domain automorphism should fail")
	}
}
