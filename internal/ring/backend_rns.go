package ring

import "reveal/internal/modular"

// rnsBackend is the production kernel: the same transform as the reference
// backend (identical twiddle tables, identical butterfly order) computed
// with lazy reduction. The forward NTT keeps residues in [0, 4q) across
// butterflies (Harvey's bound) and reduces canonically only in a final
// pass; the inverse keeps them in [0, 2q); the pointwise product replaces
// the 128-bit hardware divide with a precomputed Barrett reduction. Every
// output visible through a Poly is canonically reduced, so the backend is
// byte-identical to the reference — the cross-backend differential matrix
// enforces exactly that.
type rnsBackend struct {
	n       int
	moduli  []uint64
	tables  []nttTable
	barrett []modular.Barrett
}

func newRNSBackend(p *Parameters) (Backend, error) {
	tables, err := newNTTTables(p)
	if err != nil {
		return nil, err
	}
	barrett := make([]modular.Barrett, 0, len(p.Moduli))
	for _, q := range p.Moduli {
		br, err := modular.NewBarrett(q)
		if err != nil {
			return nil, err
		}
		barrett = append(barrett, br)
	}
	return &rnsBackend{n: p.N, moduli: p.Moduli, tables: tables, barrett: barrett}, nil
}

func (b *rnsBackend) Name() string { return RNSBackendName }

// NTT is the lazy-reduction Cooley-Tukey forward transform. Butterfly
// invariant: inputs < 4q, outputs < 4q (inputs arrive canonical, < q).
// With q < 2^61 the lazy sums stay below 2^63, so nothing overflows.
func (b *rnsBackend) NTT(j int, a []uint64) {
	tbl := &b.tables[j]
	n := b.n
	q := tbl.q
	twoQ := 2 * q
	t := n
	for m := 1; m < n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * t
			j2 := j1 + t
			w := tbl.psiPows[m+i]
			wPre := tbl.psiPowsPre[m+i]
			for k := j1; k < j2; k++ {
				u := a[k]
				if u >= twoQ {
					u -= twoQ
				}
				v := modular.MulShoupLazy(a[k+t], w, wPre, q)
				a[k] = u + v
				a[k+t] = u + twoQ - v
			}
		}
	}
	// Canonical reduction pass: values are < 4q here.
	for k := 0; k < n; k++ {
		x := a[k]
		if x >= twoQ {
			x -= twoQ
		}
		if x >= q {
			x -= q
		}
		a[k] = x
	}
}

// INTT is the lazy-reduction Gentleman-Sande inverse. Butterfly invariant:
// values < 2q; the final 1/n scaling reduces canonically.
func (b *rnsBackend) INTT(j int, a []uint64) {
	tbl := &b.tables[j]
	n := b.n
	q := tbl.q
	twoQ := 2 * q
	t := 1
	for m := n; m > 1; m >>= 1 {
		j1 := 0
		h := m >> 1
		for i := 0; i < h; i++ {
			j2 := j1 + t
			w := tbl.ipsiPows[h+i]
			wPre := tbl.ipsiPowsPre[h+i]
			for k := j1; k < j2; k++ {
				u := a[k]
				v := a[k+t]
				s := u + v
				if s >= twoQ {
					s -= twoQ
				}
				a[k] = s
				a[k+t] = modular.MulShoupLazy(u+twoQ-v, w, wPre, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	// MulShoup accepts the lazy (< 2q) inputs and reduces canonically.
	for k := 0; k < n; k++ {
		a[k] = modular.MulShoup(a[k], tbl.nInv, tbl.nInvPre, q)
	}
}

func (b *rnsBackend) AddVec(j int, a, bb, out []uint64) {
	q := b.moduli[j]
	for i := range out {
		out[i] = modular.Add(a[i], bb[i], q)
	}
}

func (b *rnsBackend) SubVec(j int, a, bb, out []uint64) {
	q := b.moduli[j]
	for i := range out {
		out[i] = modular.Sub(a[i], bb[i], q)
	}
}

func (b *rnsBackend) NegVec(j int, a, out []uint64) {
	q := b.moduli[j]
	for i := range out {
		out[i] = modular.Neg(a[i], q)
	}
}

// MulVec multiplies pointwise through the precomputed Barrett state — no
// hardware divide on the hot path, unlike the reference's 128-bit Div64.
func (b *rnsBackend) MulVec(j int, a, bb, out []uint64) {
	br := &b.barrett[j]
	for i := range out {
		out[i] = br.MulMod(a[i], bb[i])
	}
}

// MulScalarVec precomputes the Shoup preconditioner for the scalar once
// and runs the whole vector through the two-multiply Shoup path.
func (b *rnsBackend) MulScalarVec(j int, a []uint64, s uint64, out []uint64) {
	q := b.moduli[j]
	sPre := modular.ShoupPrecon(s, q)
	for i := range out {
		out[i] = modular.MulShoup(a[i], s, sPre, q)
	}
}
