package ring_test

// Differential tests: NTT-based ring arithmetic against the schoolbook
// math/big negacyclic convolution, CRT composition against the direct CRT
// formula, plus committed golden vectors for the NTT butterfly output
// (regenerate with -update). Every suite runs once per registered backend
// via forEachBackend — the golden files are shared, which forces byte
// equality between the reference and production kernels.

import (
	"math/big"
	"testing"

	"reveal/internal/testkit"
)

// TestMulPolyDifferential checks the NTT multiply against the schoolbook
// negacyclic convolution, per RNS modulus, on random operands.
func TestMulPolyDifferential(t *testing.T) {
	cases := []struct {
		n      int
		moduli []uint64
	}{
		{64, []uint64{12289}},
		{32, []uint64{12289, 257}},
		{128, []uint64{132120577}}, // the paper's q
	}
	forEachBackend(t, func(t *testing.T, be string) {
		r := testkit.NewRNG(31337)
		for _, tc := range cases {
			ctx := newCtxOn(t, be, tc.n, tc.moduli)
			for iter := 0; iter < 8; iter++ {
				a, b := r.Poly(ctx), r.Poly(ctx)
				out := ctx.NewPoly()
				ctx.MulPoly(a, b, out)
				for j, q := range tc.moduli {
					want, err := testkit.RefNegacyclicMul(a.Coeffs[j], b.Coeffs[j], q)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if out.Coeffs[j][i] != want[i] {
							t.Fatalf("n=%d q=%d iter=%d: MulPoly coeff %d = %d, ref %d",
								tc.n, q, iter, i, out.Coeffs[j][i], want[i])
						}
					}
				}
				// MulPoly must restore its operands (it NTTs clones).
				if a.InNTT || b.InNTT {
					t.Fatal("MulPoly left an operand in the NTT domain")
				}
			}
		}
	})
}

func TestNTTRoundTripDifferential(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be string) {
		ctx := newCtxOn(t, be, 64, []uint64{12289, 257})
		r := testkit.NewRNG(11)
		for iter := 0; iter < 20; iter++ {
			p := r.Poly(ctx)
			orig := p.Clone()
			ctx.NTT(p)
			if !p.InNTT {
				t.Fatal("NTT did not mark the poly")
			}
			ctx.INTT(p)
			if !p.Equal(orig) {
				t.Fatalf("iter %d: NTT/INTT round trip is not the identity", iter)
			}
		}
	})
}

// TestNTTIsNegacyclicEvaluation checks the NTT against its defining
// property: multiplying in the evaluation domain must equal the negacyclic
// product — which pins down the transform itself, not just invertibility.
func TestNTTIsNegacyclicEvaluation(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be string) {
		const q = uint64(12289)
		ctx := newCtxOn(t, be, 32, []uint64{q})
		r := testkit.NewRNG(12)
		a, b := r.Poly(ctx), r.Poly(ctx)
		want, err := testkit.RefNegacyclicMul(a.Coeffs[0], b.Coeffs[0], q)
		if err != nil {
			t.Fatal(err)
		}
		ctx.NTT(a)
		ctx.NTT(b)
		out := ctx.NewPoly()
		out.InNTT = true
		ctx.MulCoeffwise(a, b, out)
		ctx.INTT(out)
		for i := range want {
			if out.Coeffs[0][i] != want[i] {
				t.Fatalf("coeff %d: NTT pointwise product %d, schoolbook %d", i, out.Coeffs[0][i], want[i])
			}
		}
	})
}

func TestComposeCRTDifferential(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be string) {
		moduli := []uint64{12289, 257}
		ctx := newCtxOn(t, be, 32, moduli)
		r := testkit.NewRNG(21)
		p := r.Poly(ctx)
		for i := 0; i < ctx.N; i++ {
			got := ctx.ComposeCRT(p, i)
			want, err := testkit.RefCRTCompose([]uint64{p.Coeffs[0][i], p.Coeffs[1][i]}, moduli)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("coeff %d: ComposeCRT %v, ref %v", i, got, want)
			}
		}
	})
}

func TestSetCoeffBigRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be string) {
		ctx := newCtxOn(t, be, 32, []uint64{12289, 257})
		r := testkit.NewRNG(22)
		bigQ := ctx.BigQ()
		p := ctx.NewPoly()
		v := new(big.Int)
		for i := 0; i < ctx.N; i++ {
			v.SetUint64(r.Uint64())
			v.Mod(v, bigQ)
			ctx.SetCoeffBig(p, i, v)
			if got := ctx.ComposeCRT(p, i); got.Cmp(v) != 0 {
				t.Fatalf("coeff %d: ComposeCRT(SetCoeffBig(%v)) = %v", i, v, got)
			}
		}
	})
}

// goldenNTT pins the exact NTT output for a fixed seeded input, catching
// silent changes to twiddle order, scaling, or butterfly layout that a
// round-trip test alone would miss.
type goldenNTT struct {
	N      int        `json:"n"`
	Moduli []uint64   `json:"moduli"`
	Seed   uint64     `json:"seed"`
	Input  [][]uint64 `json:"input"`
	Output [][]uint64 `json:"output"`
}

func TestGoldenNTT(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be string) {
		const seed = 0x5EA1
		moduli := []uint64{12289, 257}
		ctx := newCtxOn(t, be, 64, moduli)
		r := testkit.NewRNG(seed)
		p := r.Poly(ctx)
		g := goldenNTT{N: ctx.N, Moduli: moduli, Seed: seed}
		for j := range moduli {
			g.Input = append(g.Input, append([]uint64(nil), p.Coeffs[j]...))
		}
		ctx.NTT(p)
		for j := range moduli {
			g.Output = append(g.Output, append([]uint64(nil), p.Coeffs[j]...))
		}
		// The pinned transform must still invert back to the pinned input —
		// the golden file can never capture a non-invertible (wrong) NTT.
		ctx.INTT(p)
		for j := range moduli {
			for i, v := range g.Input[j] {
				if p.Coeffs[j][i] != v {
					t.Fatalf("golden NTT input does not round-trip at [%d][%d]", j, i)
				}
			}
		}
		testkit.Golden(t, "testdata/golden_ntt.json", g)
	})
}

// TestGoldenMulPoly pins a full ring product digest — a compact tripwire
// over every layer (NTT, Shoup twiddles, pointwise product, inverse).
func TestGoldenMulPoly(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be string) {
		ctx := newCtxOn(t, be, 128, []uint64{132120577})
		r := testkit.NewRNG(0xB0B)
		a, b := r.Poly(ctx), r.Poly(ctx)
		out := ctx.NewPoly()
		ctx.MulPoly(a, b, out)
		testkit.Golden(t, "testdata/golden_mulpoly.json", map[string]any{
			"n":      ctx.N,
			"q":      uint64(132120577),
			"digest": testkit.Digest(out.Coeffs),
		})
	})
}
