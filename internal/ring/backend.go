package ring

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"reveal/internal/modular"
)

// Backend is the per-modulus arithmetic kernel behind a ring Context. Every
// method operates on one residue vector (the coefficients modulo Moduli[j])
// and must produce canonically reduced outputs in [0, q_j): backends may
// use any internal representation (lazy reduction, Montgomery domain, ...)
// but the values visible through a Poly are exact residues, which is what
// makes two backends byte-comparable and keeps the replay-determinism
// digest independent of the backend choice.
//
// The "reference" backend is the original strict-reduction implementation;
// the "rns" backend is the production kernel (lazy-reduction Harvey NTT,
// Barrett pointwise multiplication). The differential test matrix runs
// every ring/bfv suite over both.
type Backend interface {
	// Name returns the registered backend name.
	Name() string
	// NTT transforms residue vector a (length N, modulus index j) to the
	// negacyclic evaluation domain in place.
	NTT(j int, a []uint64)
	// INTT is the inverse transform, including the 1/n scaling.
	INTT(j int, a []uint64)
	// AddVec sets out[i] = a[i] + b[i] mod q_j.
	AddVec(j int, a, b, out []uint64)
	// SubVec sets out[i] = a[i] - b[i] mod q_j.
	SubVec(j int, a, b, out []uint64)
	// NegVec sets out[i] = -a[i] mod q_j.
	NegVec(j int, a, out []uint64)
	// MulVec sets out[i] = a[i] * b[i] mod q_j.
	MulVec(j int, a, b, out []uint64)
	// MulScalarVec sets out[i] = s * a[i] mod q_j for s already reduced
	// mod q_j.
	MulScalarVec(j int, a []uint64, s uint64, out []uint64)
}

// BackendFactory builds a backend instance bound to validated parameters.
type BackendFactory func(p *Parameters) (Backend, error)

const (
	// ReferenceBackendName is the strict-reduction differential reference.
	ReferenceBackendName = "reference"
	// RNSBackendName is the production lazy-reduction backend.
	RNSBackendName = "rns"
	// DefaultBackendName is the backend NewContext uses.
	DefaultBackendName = RNSBackendName
)

var (
	backendMu       sync.RWMutex
	backendRegistry = map[string]BackendFactory{}
)

// RegisterBackend adds a named backend factory; registering an existing
// name panics (backend identity is part of the test matrix contract).
func RegisterBackend(name string, f BackendFactory) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendRegistry[name]; dup {
		panic(fmt.Sprintf("ring: backend %q registered twice", name))
	}
	backendRegistry[name] = f
}

// BackendNames returns the registered backend names in sorted order — the
// iteration set of the cross-backend differential test matrix.
func BackendNames() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backendRegistry))
	for n := range backendRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewBackend instantiates the named backend for the given parameters.
func NewBackend(name string, p *Parameters) (Backend, error) {
	backendMu.RLock()
	f, ok := backendRegistry[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ring: unknown backend %q (have %v)", name, BackendNames())
	}
	return f(p)
}

func init() {
	RegisterBackend(ReferenceBackendName, newReferenceBackend)
	RegisterBackend(RNSBackendName, newRNSBackend)
}

// nttTable holds per-modulus twiddle factors in bit-reversed order plus
// Shoup preconditioners; both backends share this precomputation.
type nttTable struct {
	q           uint64
	psiPows     []uint64 // psi^bitrev(i), psi a primitive 2n-th root
	psiPowsPre  []uint64
	ipsiPows    []uint64 // psi^-bitrev(i)
	ipsiPowsPre []uint64
	nInv        uint64 // n^-1 mod q
	nInvPre     uint64
}

func newNTTTable(n int, q uint64) (nttTable, error) {
	psi, err := modular.MinimalPrimitiveNthRoot(uint64(2*n), q)
	if err != nil {
		return nttTable{}, err
	}
	psiInv, ok := modular.Inverse(psi, q)
	if !ok {
		return nttTable{}, fmt.Errorf("ring: psi not invertible mod %d", q)
	}
	nInv, ok := modular.Inverse(uint64(n), q)
	if !ok {
		return nttTable{}, fmt.Errorf("ring: n not invertible mod %d", q)
	}
	tbl := nttTable{
		q:           q,
		psiPows:     make([]uint64, n),
		psiPowsPre:  make([]uint64, n),
		ipsiPows:    make([]uint64, n),
		ipsiPowsPre: make([]uint64, n),
		nInv:        nInv,
		nInvPre:     modular.ShoupPrecon(nInv, q),
	}
	logN := bits.TrailingZeros(uint(n))
	cur, icur := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		r := BitReverse(uint32(i), logN)
		tbl.psiPows[r] = cur
		tbl.ipsiPows[r] = icur
		cur = modular.Mul(cur, psi, q)
		icur = modular.Mul(icur, psiInv, q)
	}
	for i := 0; i < n; i++ {
		tbl.psiPowsPre[i] = modular.ShoupPrecon(tbl.psiPows[i], q)
		tbl.ipsiPowsPre[i] = modular.ShoupPrecon(tbl.ipsiPows[i], q)
	}
	return tbl, nil
}

// newNTTTables builds one table per modulus of p.
func newNTTTables(p *Parameters) ([]nttTable, error) {
	tables := make([]nttTable, 0, len(p.Moduli))
	for _, q := range p.Moduli {
		tbl, err := newNTTTable(p.N, q)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// BitReverse reverses the low `bits` bits of x — the index permutation the
// twiddle tables are stored in. It is exported for the table-layout
// property tests (bit reversal is an involution).
func BitReverse(x uint32, bits int) uint32 {
	var r uint32
	for i := 0; i < bits; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}
