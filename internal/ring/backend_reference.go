package ring

import "reveal/internal/modular"

// referenceBackend is the original strict-reduction implementation: every
// butterfly fully reduces into [0, q) and the pointwise product divides via
// the 128-bit intermediate. It is deliberately simple — it exists as the
// differential reference the production backend is byte-compared against,
// and as the implementation whose outputs every committed golden vector
// and the selftest digest were pinned on.
type referenceBackend struct {
	n      int
	moduli []uint64
	tables []nttTable
}

func newReferenceBackend(p *Parameters) (Backend, error) {
	tables, err := newNTTTables(p)
	if err != nil {
		return nil, err
	}
	return &referenceBackend{n: p.N, moduli: p.Moduli, tables: tables}, nil
}

func (b *referenceBackend) Name() string { return ReferenceBackendName }

// NTT runs the negacyclic Cooley-Tukey NTT (natural order in, bit-reversed
// twiddles, natural order out), the Longa-Naehrig layout.
func (b *referenceBackend) NTT(j int, a []uint64) {
	tbl := &b.tables[j]
	n := b.n
	q := tbl.q
	t := n
	for m := 1; m < n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * t
			j2 := j1 + t
			w := tbl.psiPows[m+i]
			wPre := tbl.psiPowsPre[m+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := modular.MulShoup(a[j+t], w, wPre, q)
				a[j] = modular.Add(u, v, q)
				a[j+t] = modular.Sub(u, v, q)
			}
		}
	}
}

// INTT runs the Gentleman-Sande inverse, including the 1/n scaling and the
// psi^-1 twist (negacyclic).
func (b *referenceBackend) INTT(j int, a []uint64) {
	tbl := &b.tables[j]
	n := b.n
	q := tbl.q
	t := 1
	for m := n; m > 1; m >>= 1 {
		j1 := 0
		h := m >> 1
		for i := 0; i < h; i++ {
			j2 := j1 + t
			w := tbl.ipsiPows[h+i]
			wPre := tbl.ipsiPowsPre[h+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := a[j+t]
				a[j] = modular.Add(u, v, q)
				a[j+t] = modular.MulShoup(modular.Sub(u, v, q), w, wPre, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := 0; j < n; j++ {
		a[j] = modular.MulShoup(a[j], tbl.nInv, tbl.nInvPre, q)
	}
}

func (b *referenceBackend) AddVec(j int, a, bb, out []uint64) {
	q := b.moduli[j]
	for i := range out {
		out[i] = modular.Add(a[i], bb[i], q)
	}
}

func (b *referenceBackend) SubVec(j int, a, bb, out []uint64) {
	q := b.moduli[j]
	for i := range out {
		out[i] = modular.Sub(a[i], bb[i], q)
	}
}

func (b *referenceBackend) NegVec(j int, a, out []uint64) {
	q := b.moduli[j]
	for i := range out {
		out[i] = modular.Neg(a[i], q)
	}
}

func (b *referenceBackend) MulVec(j int, a, bb, out []uint64) {
	q := b.moduli[j]
	for i := range out {
		out[i] = modular.Mul(a[i], bb[i], q)
	}
}

func (b *referenceBackend) MulScalarVec(j int, a []uint64, s uint64, out []uint64) {
	q := b.moduli[j]
	for i := range out {
		out[i] = modular.Mul(a[i], s, q)
	}
}
