// Package ring implements the polynomial quotient ring R_q = Z_q[x]/(x^n+1)
// used by the BFV scheme: RNS (multi-prime) coefficient representation,
// negacyclic number-theoretic transforms, and the arithmetic the encryptor,
// decryptor and evaluator need. The coefficient layout follows SEAL:
// coefficient i of residue j lives at Coeffs[j][i].
package ring

import (
	"fmt"
	"math/big"
	"math/bits"

	"reveal/internal/modular"
)

// Context holds precomputed state for R_q with a fixed degree n and a fixed
// chain of NTT-friendly prime moduli.
type Context struct {
	N       int      // polynomial degree, a power of two
	Moduli  []uint64 // coefficient modulus chain q_0 ... q_{k-1}
	logN    int
	tables  []nttTable
	bigQ    *big.Int   // product of all moduli
	qiHat   []*big.Int // Q / q_i
	qiHatIn []uint64   // (Q/q_i)^-1 mod q_i
}

// nttTable holds per-modulus twiddle factors in bit-reversed order plus
// Shoup preconditioners.
type nttTable struct {
	q           uint64
	psiPows     []uint64 // psi^bitrev(i), psi a primitive 2n-th root
	psiPowsPre  []uint64
	ipsiPows    []uint64 // psi^-bitrev(i)
	ipsiPowsPre []uint64
	nInv        uint64 // n^-1 mod q
	nInvPre     uint64
}

// NewContext validates the degree and moduli and precomputes NTT tables and
// CRT constants. Each modulus must be prime, distinct, and ≡ 1 (mod 2n).
func NewContext(n int, moduli []uint64) (*Context, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: degree %d must be a power of two ≥ 2", n)
	}
	if len(moduli) == 0 {
		return nil, fmt.Errorf("ring: at least one modulus required")
	}
	ctx := &Context{
		N:      n,
		Moduli: append([]uint64(nil), moduli...),
		logN:   bits.TrailingZeros(uint(n)),
	}
	seen := map[uint64]bool{}
	for _, q := range moduli {
		if err := modular.ValidateModulus(q); err != nil {
			return nil, err
		}
		if !modular.IsPrime(q) {
			return nil, fmt.Errorf("ring: modulus %d is not prime", q)
		}
		if (q-1)%uint64(2*n) != 0 {
			return nil, fmt.Errorf("ring: modulus %d is not ≡ 1 mod 2n=%d", q, 2*n)
		}
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
		tbl, err := newNTTTable(n, q)
		if err != nil {
			return nil, err
		}
		ctx.tables = append(ctx.tables, tbl)
	}
	// CRT constants.
	ctx.bigQ = big.NewInt(1)
	for _, q := range moduli {
		ctx.bigQ.Mul(ctx.bigQ, new(big.Int).SetUint64(q))
	}
	for _, q := range moduli {
		qi := new(big.Int).SetUint64(q)
		hat := new(big.Int).Quo(ctx.bigQ, qi)
		ctx.qiHat = append(ctx.qiHat, hat)
		hatMod := new(big.Int).Mod(hat, qi).Uint64()
		inv, ok := modular.Inverse(hatMod, q)
		if !ok {
			return nil, fmt.Errorf("ring: CRT constant not invertible mod %d", q)
		}
		ctx.qiHatIn = append(ctx.qiHatIn, inv)
	}
	return ctx, nil
}

func newNTTTable(n int, q uint64) (nttTable, error) {
	psi, err := modular.MinimalPrimitiveNthRoot(uint64(2*n), q)
	if err != nil {
		return nttTable{}, err
	}
	psiInv, ok := modular.Inverse(psi, q)
	if !ok {
		return nttTable{}, fmt.Errorf("ring: psi not invertible mod %d", q)
	}
	nInv, ok := modular.Inverse(uint64(n), q)
	if !ok {
		return nttTable{}, fmt.Errorf("ring: n not invertible mod %d", q)
	}
	tbl := nttTable{
		q:           q,
		psiPows:     make([]uint64, n),
		psiPowsPre:  make([]uint64, n),
		ipsiPows:    make([]uint64, n),
		ipsiPowsPre: make([]uint64, n),
		nInv:        nInv,
		nInvPre:     modular.ShoupPrecon(nInv, q),
	}
	logN := bits.TrailingZeros(uint(n))
	cur, icur := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		r := bitrev(uint32(i), logN)
		tbl.psiPows[r] = cur
		tbl.ipsiPows[r] = icur
		cur = modular.Mul(cur, psi, q)
		icur = modular.Mul(icur, psiInv, q)
	}
	for i := 0; i < n; i++ {
		tbl.psiPowsPre[i] = modular.ShoupPrecon(tbl.psiPows[i], q)
		tbl.ipsiPowsPre[i] = modular.ShoupPrecon(tbl.ipsiPows[i], q)
	}
	return tbl, nil
}

func bitrev(x uint32, bits int) uint32 {
	var r uint32
	for i := 0; i < bits; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// Level returns the number of moduli in the chain.
func (c *Context) Level() int { return len(c.Moduli) }

// BigQ returns the full coefficient modulus Q as a big integer (a copy).
func (c *Context) BigQ() *big.Int { return new(big.Int).Set(c.bigQ) }

// NewPoly allocates a zero polynomial in coefficient representation.
func (c *Context) NewPoly() *Poly {
	coeffs := make([][]uint64, len(c.Moduli))
	backing := make([]uint64, len(c.Moduli)*c.N)
	for j := range coeffs {
		coeffs[j], backing = backing[:c.N:c.N], backing[c.N:]
	}
	return &Poly{ctx: c, Coeffs: coeffs}
}

// NTT transforms p to the evaluation (NTT) domain in place.
func (c *Context) NTT(p *Poly) {
	if p.InNTT {
		return
	}
	for j := range c.tables {
		c.nttForward(p.Coeffs[j], &c.tables[j])
	}
	p.InNTT = true
}

// INTT transforms p back to the coefficient domain in place.
func (c *Context) INTT(p *Poly) {
	if !p.InNTT {
		return
	}
	for j := range c.tables {
		c.nttInverse(p.Coeffs[j], &c.tables[j])
	}
	p.InNTT = false
}

// nttForward runs the negacyclic Cooley-Tukey NTT (natural order in,
// bit-reversed twiddles, natural order out), the Longa-Naehrig layout.
func (c *Context) nttForward(a []uint64, tbl *nttTable) {
	n := c.N
	q := tbl.q
	t := n
	for m := 1; m < n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * t
			j2 := j1 + t
			w := tbl.psiPows[m+i]
			wPre := tbl.psiPowsPre[m+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := modular.MulShoup(a[j+t], w, wPre, q)
				a[j] = modular.Add(u, v, q)
				a[j+t] = modular.Sub(u, v, q)
			}
		}
	}
}

// nttInverse runs the Gentleman-Sande inverse, including the 1/n scaling
// and the psi^-1 twist (negacyclic).
func (c *Context) nttInverse(a []uint64, tbl *nttTable) {
	n := c.N
	q := tbl.q
	t := 1
	for m := n; m > 1; m >>= 1 {
		j1 := 0
		h := m >> 1
		for i := 0; i < h; i++ {
			j2 := j1 + t
			w := tbl.ipsiPows[h+i]
			wPre := tbl.ipsiPowsPre[h+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := a[j+t]
				a[j] = modular.Add(u, v, q)
				a[j+t] = modular.MulShoup(modular.Sub(u, v, q), w, wPre, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := 0; j < n; j++ {
		a[j] = modular.MulShoup(a[j], tbl.nInv, tbl.nInvPre, q)
	}
}

// ComposeCRT returns coefficient i of p (which must be in coefficient
// representation) as a big integer in [0, Q).
func (c *Context) ComposeCRT(p *Poly, i int) *big.Int {
	acc := new(big.Int)
	term := new(big.Int)
	for j, q := range c.Moduli {
		// acc += qiHat_j * ((x_j * qiHatInv_j) mod q_j)
		xj := modular.Mul(p.Coeffs[j][i], c.qiHatIn[j], q)
		term.SetUint64(xj)
		term.Mul(term, c.qiHat[j])
		acc.Add(acc, term)
	}
	return acc.Mod(acc, c.bigQ)
}

// SetCoeffBig sets coefficient i of p from a big integer (reduced mod each
// prime). p must be in coefficient representation.
func (c *Context) SetCoeffBig(p *Poly, i int, v *big.Int) {
	tmp := new(big.Int)
	for j, q := range c.Moduli {
		tmp.Mod(v, tmp.SetUint64(q))
		p.Coeffs[j][i] = tmp.Uint64()
	}
}
