// Package ring implements the polynomial quotient ring R_q = Z_q[x]/(x^n+1)
// used by the BFV scheme: RNS (multi-prime) coefficient representation,
// negacyclic number-theoretic transforms, and the arithmetic the encryptor,
// decryptor and evaluator need. The coefficient layout follows SEAL:
// coefficient i of residue j lives at Coeffs[j][i].
//
// The arithmetic kernels live behind the Backend interface: the "reference"
// backend is the original strict-reduction implementation kept as the
// differential oracle, the "rns" backend is the production lazy-reduction
// kernel. A Context binds validated Parameters to one backend instance plus
// the CRT reconstruction constants.
package ring

import (
	"fmt"
	"math/big"

	"reveal/internal/modular"
)

// Context holds precomputed state for R_q with a fixed degree n and a fixed
// chain of NTT-friendly prime moduli, bound to one arithmetic backend.
type Context struct {
	N       int      // polynomial degree, a power of two
	Moduli  []uint64 // coefficient modulus chain q_0 ... q_{k-1}
	params  *Parameters
	backend Backend
	bigQ    *big.Int   // product of all moduli
	qiHat   []*big.Int // Q / q_i
	qiHatIn []uint64   // (Q/q_i)^-1 mod q_i
}

// NewContext validates the degree and moduli and builds a context on the
// default backend. Each modulus must be prime, distinct, and ≡ 1 (mod 2n).
func NewContext(n int, moduli []uint64) (*Context, error) {
	params, err := NewParameters(n, moduli)
	if err != nil {
		return nil, err
	}
	return NewContextFor(params, DefaultBackendName)
}

// NewContextFor builds a context for already-validated parameters on the
// named backend — the entry point the cross-backend differential matrix
// uses to run identical workloads through every registered kernel.
func NewContextFor(params *Parameters, backendName string) (*Context, error) {
	if params == nil {
		return nil, fmt.Errorf("ring: nil parameters")
	}
	backend, err := NewBackend(backendName, params)
	if err != nil {
		return nil, err
	}
	ctx := &Context{
		N:       params.N,
		Moduli:  append([]uint64(nil), params.Moduli...),
		params:  params,
		backend: backend,
	}
	// CRT constants.
	ctx.bigQ = big.NewInt(1)
	for _, q := range params.Moduli {
		ctx.bigQ.Mul(ctx.bigQ, new(big.Int).SetUint64(q))
	}
	for _, q := range params.Moduli {
		qi := new(big.Int).SetUint64(q)
		hat := new(big.Int).Quo(ctx.bigQ, qi)
		ctx.qiHat = append(ctx.qiHat, hat)
		hatMod := new(big.Int).Mod(hat, qi).Uint64()
		inv, ok := modular.Inverse(hatMod, q)
		if !ok {
			return nil, fmt.Errorf("ring: CRT constant not invertible mod %d", q)
		}
		ctx.qiHatIn = append(ctx.qiHatIn, inv)
	}
	return ctx, nil
}

// Params returns the validated parameters this context was built from.
func (c *Context) Params() *Parameters { return c.params }

// Backend returns the arithmetic backend bound to this context.
func (c *Context) Backend() Backend { return c.backend }

// Level returns the number of moduli in the chain.
func (c *Context) Level() int { return len(c.Moduli) }

// BigQ returns the full coefficient modulus Q as a big integer (a copy).
func (c *Context) BigQ() *big.Int { return new(big.Int).Set(c.bigQ) }

// NewPoly allocates a zero polynomial in coefficient representation.
func (c *Context) NewPoly() *Poly {
	coeffs := make([][]uint64, len(c.Moduli))
	backing := make([]uint64, len(c.Moduli)*c.N)
	for j := range coeffs {
		coeffs[j], backing = backing[:c.N:c.N], backing[c.N:]
	}
	return &Poly{ctx: c, Coeffs: coeffs}
}

// NTT transforms p to the evaluation (NTT) domain in place.
func (c *Context) NTT(p *Poly) {
	if p.InNTT {
		return
	}
	for j := range p.Coeffs {
		c.backend.NTT(j, p.Coeffs[j])
	}
	p.InNTT = true
}

// INTT transforms p back to the coefficient domain in place.
func (c *Context) INTT(p *Poly) {
	if !p.InNTT {
		return
	}
	for j := range p.Coeffs {
		c.backend.INTT(j, p.Coeffs[j])
	}
	p.InNTT = false
}

// ComposeCRT returns coefficient i of p (which must be in coefficient
// representation) as a big integer in [0, Q).
func (c *Context) ComposeCRT(p *Poly, i int) *big.Int {
	acc := new(big.Int)
	term := new(big.Int)
	for j, q := range c.Moduli {
		// acc += qiHat_j * ((x_j * qiHatInv_j) mod q_j)
		xj := modular.Mul(p.Coeffs[j][i], c.qiHatIn[j], q)
		term.SetUint64(xj)
		term.Mul(term, c.qiHat[j])
		acc.Add(acc, term)
	}
	return acc.Mod(acc, c.bigQ)
}

// SetCoeffBig sets coefficient i of p from a big integer (reduced mod each
// prime). p must be in coefficient representation.
func (c *Context) SetCoeffBig(p *Poly, i int, v *big.Int) {
	tmp := new(big.Int)
	for j, q := range c.Moduli {
		tmp.Mod(v, tmp.SetUint64(q))
		p.Coeffs[j][i] = tmp.Uint64()
	}
}
