package ring_test

// Fuzz targets for the ring layer, wired into the CI fuzz-smoke step:
// FuzzNTTRoundTrip checks forward+inverse identity over every ladder prime
// on both backends (and cross-backend byte equality of the forward
// transform); FuzzCRTReconstruct checks RNS decompose→reconstruct identity
// and that non-coprime bases (duplicate or composite moduli) are rejected
// at construction.

import (
	"encoding/binary"
	"math/big"
	"testing"

	"reveal/internal/ring"
)

// ladderPrimePool returns the distinct primes of the whole ladder.
func ladderPrimePool(t testing.TB) []uint64 {
	t.Helper()
	seen := map[uint64]bool{}
	var pool []uint64
	for _, n := range ring.LadderDegrees() {
		p, err := ring.LadderParams(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range p.Moduli {
			if !seen[q] {
				seen[q] = true
				pool = append(pool, q)
			}
		}
	}
	return pool
}

func FuzzNTTRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66})
	f.Add(make([]byte, 64))
	pool := ladderPrimePool(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 32
		for _, q := range pool {
			params, err := ring.NewParameters(n, []uint64{q})
			if err != nil {
				t.Fatalf("ladder prime %d rejected at n=%d: %v", q, n, err)
			}
			var polys []*ring.Poly
			for _, be := range ring.BackendNames() {
				ctx, err := ring.NewContextFor(params, be)
				if err != nil {
					t.Fatal(err)
				}
				p := ctx.NewPoly()
				for i := 0; i < n; i++ {
					var w [8]byte
					copy(w[:], data[(8*i)%max(len(data), 1):])
					p.Coeffs[0][i] = binary.LittleEndian.Uint64(w[:]) % q
				}
				orig := p.Clone()
				ctx.NTT(p)
				fwd := p.Clone()
				ctx.INTT(p)
				if !p.Equal(orig) {
					t.Fatalf("backend=%s q=%d: NTT round trip not identity", be, q)
				}
				polys = append(polys, fwd)
			}
			// Cross-backend: forward transforms must agree byte-for-byte.
			for i := 1; i < len(polys); i++ {
				for c := range polys[0].Coeffs[0] {
					if polys[0].Coeffs[0][c] != polys[i].Coeffs[0][c] {
						t.Fatalf("q=%d: forward NTT diverges between backends at coeff %d", q, c)
					}
				}
			}
		}
	})
}

func FuzzCRTReconstruct(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(2), byte(0))
	f.Add(uint64(12345678901234567), uint64(42), uint64(7), byte(1))
	f.Add(^uint64(0), ^uint64(0)>>3, uint64(3), byte(2))
	pool := ladderPrimePool(f)
	f.Fuzz(func(t *testing.T, v0, v1, v2 uint64, pick byte) {
		const n = 4
		// Choose a 3-prime basis from the pool, all distinct.
		k := len(pool)
		if k < 3 {
			t.Fatalf("ladder prime pool too small: %d", k)
		}
		i0 := int(pick) % k
		i1 := (i0 + 1 + int(v2%uint64(k-1))) % k
		i2 := (i1 + 1) % k
		if i2 == i0 {
			i2 = (i2 + 1) % k
		}
		basis := []uint64{pool[i0], pool[i1], pool[i2]}
		seen := map[uint64]bool{}
		for _, q := range basis {
			if seen[q] {
				return // degenerate pick; rejection is tested below anyway
			}
			seen[q] = true
		}
		ctx, err := ring.NewContext(n, basis)
		if err != nil {
			t.Fatalf("valid basis %v rejected: %v", basis, err)
		}
		// Build a value < Q from the three fuzz words and check
		// decompose → reconstruct is the identity.
		v := new(big.Int).SetUint64(v0)
		v.Lsh(v, 64).Or(v, new(big.Int).SetUint64(v1))
		v.Mod(v, ctx.BigQ())
		p := ctx.NewPoly()
		ctx.SetCoeffBig(p, 0, v)
		for j, q := range basis {
			want := new(big.Int).Mod(v, new(big.Int).SetUint64(q)).Uint64()
			if p.Coeffs[j][0] != want {
				t.Fatalf("decompose residue %d wrong: got %d want %d", j, p.Coeffs[j][0], want)
			}
		}
		if got := ctx.ComposeCRT(p, 0); got.Cmp(v) != 0 {
			t.Fatalf("reconstruct(decompose(%v)) = %v", v, got)
		}
		// Non-coprime bases must be rejected: a duplicated prime shares a
		// factor with itself, and a composite q0*small likewise overlaps.
		if _, err := ring.NewContext(n, []uint64{basis[0], basis[0]}); err == nil {
			t.Fatal("duplicate modulus (non-coprime basis) accepted")
		}
		if _, err := ring.NewContext(n, []uint64{basis[0], basis[0] * 3}); err == nil {
			t.Fatal("composite multiple of basis prime accepted")
		}
	})
}
