package ring_test

// Property-based invariant tests: the ring axioms of R_q = Z_q[x]/(x^n+1)
// must hold for every seeded random triple, and the Galois automorphisms
// must be ring homomorphisms. Each suite runs once per registered backend.

import (
	"testing"

	"reveal/internal/ring"
	"reveal/internal/testkit"
)

func propCtx(t *testing.T, backend string) *ring.Context {
	t.Helper()
	return newCtxOn(t, backend, 64, []uint64{12289, 257})
}

func TestRingAdditiveLaws(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be string) {
		ctx := propCtx(t, be)
		r := testkit.NewRNG(101)
		for iter := 0; iter < 10; iter++ {
			a, b, c := r.Poly(ctx), r.Poly(ctx), r.Poly(ctx)
			ab, ba := ctx.NewPoly(), ctx.NewPoly()
			ctx.Add(a, b, ab)
			ctx.Add(b, a, ba)
			if !ab.Equal(ba) {
				t.Fatal("a+b != b+a")
			}
			abc1, abc2, tmp := ctx.NewPoly(), ctx.NewPoly(), ctx.NewPoly()
			ctx.Add(a, b, tmp)
			ctx.Add(tmp, c, abc1)
			ctx.Add(b, c, tmp)
			ctx.Add(a, tmp, abc2)
			if !abc1.Equal(abc2) {
				t.Fatal("(a+b)+c != a+(b+c)")
			}
			neg, sum := ctx.NewPoly(), ctx.NewPoly()
			ctx.Neg(a, neg)
			ctx.Add(a, neg, sum)
			zero := ctx.NewPoly()
			if !sum.Equal(zero) {
				t.Fatal("a + (-a) != 0")
			}
			diff, viaNeg := ctx.NewPoly(), ctx.NewPoly()
			ctx.Sub(a, b, diff)
			ctx.Neg(b, tmp)
			ctx.Add(a, tmp, viaNeg)
			if !diff.Equal(viaNeg) {
				t.Fatal("a-b != a+(-b)")
			}
		}
	})
}

func TestRingMultiplicativeLaws(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be string) {
		ctx := propCtx(t, be)
		r := testkit.NewRNG(102)
		for iter := 0; iter < 6; iter++ {
			a, b, c := r.Poly(ctx), r.Poly(ctx), r.Poly(ctx)
			ab, ba := ctx.NewPoly(), ctx.NewPoly()
			ctx.MulPoly(a, b, ab)
			ctx.MulPoly(b, a, ba)
			if !ab.Equal(ba) {
				t.Fatal("a*b != b*a")
			}
			// Associativity: (a*b)*c == a*(b*c).
			l, rr, tmp := ctx.NewPoly(), ctx.NewPoly(), ctx.NewPoly()
			ctx.MulPoly(ab, c, l)
			ctx.MulPoly(b, c, tmp)
			ctx.MulPoly(a, tmp, rr)
			if !l.Equal(rr) {
				t.Fatal("(a*b)*c != a*(b*c)")
			}
			// Distributivity: a*(b+c) == a*b + a*c.
			bc, abc, abac, ac := ctx.NewPoly(), ctx.NewPoly(), ctx.NewPoly(), ctx.NewPoly()
			ctx.Add(b, c, bc)
			ctx.MulPoly(a, bc, abc)
			ctx.MulPoly(a, c, ac)
			ctx.Add(ab, ac, abac)
			if !abc.Equal(abac) {
				t.Fatal("a*(b+c) != a*b + a*c")
			}
			// Multiplicative identity.
			one := ctx.NewPoly()
			for j := range ctx.Moduli {
				one.Coeffs[j][0] = 1
			}
			aOne := ctx.NewPoly()
			ctx.MulPoly(a, one, aOne)
			if !aOne.Equal(a) {
				t.Fatal("a*1 != a")
			}
		}
	})
}

func TestScalarMulMatchesRepeatedAdd(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be string) {
		ctx := propCtx(t, be)
		r := testkit.NewRNG(103)
		a := r.Poly(ctx)
		acc := ctx.NewPoly()
		byScalar := ctx.NewPoly()
		for s := uint64(1); s <= 8; s++ {
			ctx.Add(acc, a, acc)
			ctx.MulScalar(a, s, byScalar)
			if !byScalar.Equal(acc) {
				t.Fatalf("%d*a != a added %d times", s, s)
			}
		}
	})
}

// TestAutomorphismIsRingHomomorphism: x -> x^g must commute with both ring
// operations — the property ApplyGalois and the attack's hint rotation
// depend on.
func TestAutomorphismIsRingHomomorphism(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be string) {
		ctx := propCtx(t, be)
		r := testkit.NewRNG(104)
		for _, g := range []uint64{3, 5, 2*64 - 1} {
			a, b := r.Poly(ctx), r.Poly(ctx)
			sum, prod := ctx.NewPoly(), ctx.NewPoly()
			ctx.Add(a, b, sum)
			ctx.MulPoly(a, b, prod)
			autA, autB, autSum, autProd := ctx.NewPoly(), ctx.NewPoly(), ctx.NewPoly(), ctx.NewPoly()
			for dst, src := range map[*ring.Poly]*ring.Poly{autA: a, autB: b, autSum: sum, autProd: prod} {
				if err := ctx.Automorphism(src, g, dst); err != nil {
					t.Fatalf("Automorphism(g=%d): %v", g, err)
				}
			}
			check := ctx.NewPoly()
			ctx.Add(autA, autB, check)
			if !check.Equal(autSum) {
				t.Fatalf("g=%d: aut(a+b) != aut(a)+aut(b)", g)
			}
			ctx.MulPoly(autA, autB, check)
			if !check.Equal(autProd) {
				t.Fatalf("g=%d: aut(a*b) != aut(a)*aut(b)", g)
			}
		}
		// An even g is not a unit mod 2n and must be rejected.
		bad := ctx.NewPoly()
		if err := ctx.Automorphism(bad, 4, ctx.NewPoly()); err == nil {
			t.Fatal("Automorphism accepted even Galois element")
		}
	})
}

func TestSetSignedInfNorm(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be string) {
		ctx := propCtx(t, be)
		r := testkit.NewRNG(105)
		for iter := 0; iter < 10; iter++ {
			vals := r.SignedCoeffs(ctx.N, 40)
			p := ctx.NewPoly()
			if err := ctx.SetSigned(p, vals); err != nil {
				t.Fatal(err)
			}
			var want uint64
			for _, v := range vals {
				m := v
				if m < 0 {
					m = -m
				}
				if uint64(m) > want {
					want = uint64(m)
				}
			}
			if got := ctx.InfNormCentered(p); got != want {
				t.Fatalf("InfNormCentered = %d, want %d", got, want)
			}
		}
	})
}
