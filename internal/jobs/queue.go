// Package jobs implements the in-memory campaign job queue and the worker
// pool that executes jobs for the reveald service: jobs move through the
// states queued → running → done/failed, with per-job retry (exponential
// backoff plus deterministic jitter), absolute deadlines, cancellation of
// both queued and running jobs, and a graceful drain used on SIGTERM.
// Queue depth and worker utilization are exported as gauges on the global
// obs registry, so they appear on the existing /metrics endpoint.
package jobs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"reveal/internal/obs"
	"reveal/internal/sampler"
)

// State is a job lifecycle state.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Queue metric names (global obs registry).
const (
	MetricQueueDepth   = "reveal_jobs_queue_depth"
	MetricJobsRunning  = "reveal_jobs_running"
	MetricJobsTotal    = "reveal_jobs_total" // labeled {state="submitted|done|failed|retried"}
	MetricWorkersTotal = "reveal_workers_total"
	MetricWorkersBusy  = "reveal_workers_busy"
)

// Spec describes one job at submission time.
type Spec struct {
	// Kind tags the workload (the runner dispatches on it).
	Kind string
	// Payload is the opaque job input (e.g. a campaign spec).
	Payload any
	// MaxAttempts bounds execution attempts; 0 uses the queue default.
	MaxAttempts int
	// Timeout, when positive, sets the job deadline to submission time +
	// Timeout. The deadline is absolute: it covers queue wait, every
	// attempt, and every backoff pause.
	Timeout time.Duration
}

// Job is one queued campaign. All fields are owned by the queue and must
// only be read through Snapshot (or inside the runner, which receives the
// job while it is exclusively running).
type Job struct {
	ID          string
	Kind        string
	Payload     any
	State       State
	Attempts    int
	MaxAttempts int
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
	// NotBefore gates retried jobs until their backoff expires.
	NotBefore time.Time
	// Deadline, when non-zero, fails the job once passed (queued or
	// running; a running attempt is canceled through its context).
	Deadline time.Time
	Error    string
	Result   any

	seq      uint64
	canceled bool
	cancel   func() // cancels the running attempt's context
}

// Status is the JSON-safe snapshot of a job served by the HTTP API.
type Status struct {
	ID          string     `json:"id"`
	Kind        string     `json:"kind"`
	State       State      `json:"state"`
	Attempts    int        `json:"attempts"`
	MaxAttempts int        `json:"max_attempts"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	NotBefore   *time.Time `json:"not_before,omitempty"`
	Deadline    *time.Time `json:"deadline,omitempty"`
	Error       string     `json:"error,omitempty"`
	Result      any        `json:"result,omitempty"`
}

func optTime(t time.Time) *time.Time {
	if t.IsZero() {
		return nil
	}
	tt := t
	return &tt
}

// snapshot copies the job; the queue lock must be held.
func (j *Job) snapshot() Status {
	return Status{
		ID:          j.ID,
		Kind:        j.Kind,
		State:       j.State,
		Attempts:    j.Attempts,
		MaxAttempts: j.MaxAttempts,
		SubmittedAt: j.SubmittedAt,
		StartedAt:   optTime(j.StartedAt),
		FinishedAt:  optTime(j.FinishedAt),
		NotBefore:   optTime(j.NotBefore),
		Deadline:    optTime(j.Deadline),
		Error:       j.Error,
		Result:      j.Result,
	}
}

// Options configures a Queue.
type Options struct {
	// MaxAttempts is the default attempt budget per job (minimum 1).
	MaxAttempts int
	// BackoffBase is the first retry delay; attempt k waits
	// BackoffBase·2^(k−1), scaled by jitter and capped at BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay.
	BackoffMax time.Duration
	// JitterSeed seeds the deterministic backoff jitter PRNG.
	JitterSeed uint64
	// Capacity bounds queued+running jobs; 0 means unbounded.
	Capacity int
}

// DefaultOptions returns the daemon defaults: 3 attempts, 500 ms base
// backoff capped at 30 s.
func DefaultOptions() Options {
	return Options{MaxAttempts: 3, BackoffBase: 500 * time.Millisecond, BackoffMax: 30 * time.Second}
}

// Queue is the in-memory job queue. Safe for concurrent use.
type Queue struct {
	mu      sync.Mutex
	opts    Options
	jobs    map[string]*Job
	byAge   []*Job // submission order (seq ascending), terminal jobs included
	seq     uint64
	accept  bool
	wake    chan struct{}
	jitter  sampler.PRNG
	queued  int
	running int
}

// NewQueue builds an empty queue.
func NewQueue(opts Options) *Queue {
	if opts.MaxAttempts < 1 {
		opts.MaxAttempts = 1
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 500 * time.Millisecond
	}
	if opts.BackoffMax < opts.BackoffBase {
		opts.BackoffMax = 30 * time.Second
	}
	return &Queue{
		opts:   opts,
		jobs:   map[string]*Job{},
		accept: true,
		wake:   make(chan struct{}),
		jitter: sampler.NewXoshiro256(opts.JitterSeed ^ 0x9042),
	}
}

// broadcast wakes every waiting worker; q.mu must be held.
func (q *Queue) broadcast() {
	close(q.wake)
	q.wake = make(chan struct{})
}

func (q *Queue) gauges() {
	reg := obs.Global().Registry()
	reg.Gauge(MetricQueueDepth).Set(float64(q.queued))
	reg.Gauge(MetricJobsRunning).Set(float64(q.running))
}

func jobsTotal(state string) {
	obs.Global().Registry().Counter(fmt.Sprintf("%s{state=%q}", MetricJobsTotal, state)).Inc()
}

// Submit enqueues a job and returns its snapshot.
func (q *Queue) Submit(spec Spec) (Status, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.accept {
		return Status{}, fmt.Errorf("jobs: queue is shutting down")
	}
	if q.opts.Capacity > 0 && q.queued+q.running >= q.opts.Capacity {
		return Status{}, fmt.Errorf("jobs: queue full (%d jobs)", q.opts.Capacity)
	}
	q.seq++
	maxAttempts := spec.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = q.opts.MaxAttempts
	}
	now := time.Now()
	j := &Job{
		ID:          fmt.Sprintf("job-%06d", q.seq),
		Kind:        spec.Kind,
		Payload:     spec.Payload,
		State:       StateQueued,
		MaxAttempts: maxAttempts,
		SubmittedAt: now,
		seq:         q.seq,
	}
	if spec.Timeout > 0 {
		j.Deadline = now.Add(spec.Timeout)
	}
	q.jobs[j.ID] = j
	q.byAge = append(q.byAge, j)
	q.queued++
	jobsTotal("submitted")
	q.gauges()
	obs.Log().Info("job submitted", "id", j.ID, "kind", j.Kind,
		"max_attempts", j.MaxAttempts, "queue_depth", q.queued)
	q.broadcast()
	return j.snapshot(), nil
}

// reapLocked fails queued jobs whose deadline has passed. It runs on every
// queue observation (and inside claim), so expiry does not depend on an
// idle worker scanning the queue; q.mu must be held.
func (q *Queue) reapLocked(now time.Time) {
	for _, j := range q.byAge {
		if j.State == StateQueued && !j.Deadline.IsZero() && now.After(j.Deadline) {
			q.finalizeLocked(j, StateFailed, "deadline exceeded while queued")
		}
	}
}

// Get returns a job snapshot.
func (q *Queue) Get(id string) (Status, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(time.Now())
	j, ok := q.jobs[id]
	if !ok {
		return Status{}, false
	}
	return j.snapshot(), true
}

// List returns every job in submission order.
func (q *Queue) List() []Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(time.Now())
	out := make([]Status, 0, len(q.byAge))
	for _, j := range q.byAge {
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Depth returns (queued, running) counts.
func (q *Queue) Depth() (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(time.Now())
	return q.queued, q.running
}

// Cancel aborts a job: a queued job fails immediately, a running job has
// its context canceled (the worker then marks it failed). Canceling a
// finished job is a no-op.
func (q *Queue) Cancel(id string) error {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return fmt.Errorf("jobs: unknown job %s", id)
	}
	var cancel func()
	switch j.State {
	case StateQueued:
		j.canceled = true
		q.finalizeLocked(j, StateFailed, "canceled")
	case StateRunning:
		j.canceled = true
		cancel = j.cancel
	}
	q.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// stopAccepting rejects further submissions (drain mode).
func (q *Queue) stopAccepting() {
	q.mu.Lock()
	q.accept = false
	q.broadcast()
	q.mu.Unlock()
}

// claim hands the oldest eligible queued job to a worker. When no job is
// eligible it returns the wait until the next backoff gate expires (0 when
// nothing is pending at all) plus the wake channel to select on. Queued
// jobs whose deadline has passed are failed during the scan.
func (q *Queue) claim(now time.Time) (j *Job, wait time.Duration, wake <-chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var next time.Time
	var best *Job
	for _, cand := range q.byAge {
		if cand.State != StateQueued {
			continue
		}
		if !cand.Deadline.IsZero() && now.After(cand.Deadline) {
			q.finalizeLocked(cand, StateFailed, "deadline exceeded while queued")
			continue
		}
		if cand.NotBefore.After(now) {
			if next.IsZero() || cand.NotBefore.Before(next) {
				next = cand.NotBefore
			}
			continue
		}
		if best == nil || cand.seq < best.seq {
			best = cand
		}
	}
	if best != nil {
		best.State = StateRunning
		best.Attempts++
		best.StartedAt = now
		q.queued--
		q.running++
		q.gauges()
		obs.Log().Debug("job claimed", "id", best.ID, "attempt", best.Attempts)
		return best, 0, nil
	}
	if !next.IsZero() {
		wait = time.Until(next)
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
	}
	return nil, wait, q.wake
}

// finalizeLocked moves a job to a terminal state; q.mu must be held.
func (q *Queue) finalizeLocked(j *Job, state State, errMsg string) {
	if j.State == StateQueued {
		q.queued--
	} else if j.State == StateRunning {
		q.running--
	}
	j.State = state
	j.Error = errMsg
	j.FinishedAt = time.Now()
	j.cancel = nil
	j.NotBefore = time.Time{}
	if state == StateDone {
		jobsTotal("done")
	} else {
		jobsTotal("failed")
	}
	q.gauges()
	obs.Log().Info("job finished", "id", j.ID, "state", string(state),
		"attempts", j.Attempts, "error", errMsg)
	q.broadcast()
}

// backoffLocked computes the jittered exponential backoff for the given
// attempt number (1-based); q.mu must be held (the jitter PRNG is shared).
func (q *Queue) backoffLocked(attempt int) time.Duration {
	d := q.opts.BackoffBase
	for i := 1; i < attempt && d < q.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > q.opts.BackoffMax {
		d = q.opts.BackoffMax
	}
	// Jitter in [0.5, 1.5): desynchronizes retry herds while keeping the
	// exponential envelope.
	return time.Duration(float64(d) * (0.5 + sampler.Float64(q.jitter)))
}

// complete records one finished attempt: success, retryable failure (back
// to queued with backoff), or terminal failure (cancellation, deadline, or
// attempt budget exhausted).
func (q *Queue) complete(j *Job, result any, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		j.Result = result
		q.finalizeLocked(j, StateDone, "")
	case j.canceled:
		q.finalizeLocked(j, StateFailed, "canceled")
	case !j.Deadline.IsZero() && time.Now().After(j.Deadline):
		q.finalizeLocked(j, StateFailed, fmt.Sprintf("deadline exceeded: %v", err))
	case j.Attempts < j.MaxAttempts:
		backoff := q.backoffLocked(j.Attempts)
		j.State = StateQueued
		j.NotBefore = time.Now().Add(backoff)
		j.Error = err.Error()
		q.running--
		q.queued++
		jobsTotal("retried")
		q.gauges()
		obs.Log().Warn("job attempt failed, retrying", "id", j.ID,
			"attempt", j.Attempts, "max_attempts", j.MaxAttempts,
			"backoff", backoff, "error", err)
		q.broadcast()
	default:
		q.finalizeLocked(j, StateFailed, err.Error())
	}
}
