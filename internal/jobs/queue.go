// Package jobs implements the in-memory campaign job queue and the worker
// pool that executes jobs for the reveald service: jobs move through the
// states queued → running → done/failed, with per-job retry (exponential
// backoff plus deterministic jitter), absolute deadlines, cancellation of
// both queued and running jobs, and a graceful drain used on SIGTERM.
// Queue depth and worker utilization are exported as gauges on the global
// obs registry, so they appear on the existing /metrics endpoint.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"reveal/internal/jobs/wal"
	"reveal/internal/obs"
	"reveal/internal/sampler"
)

// State is a job lifecycle state.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Submission and lease rejections; match with errors.Is. The HTTP layer
// maps ErrQueueFull/ErrOverQuota to 429 + Retry-After (backpressure) and
// ErrLeaseLost to 409 (the caller's lease is stale).
var (
	ErrQueueFull = errors.New("queue full")
	ErrOverQuota = errors.New("tenant over quota")
	// ErrLeaseLost rejects a renewal or completion whose worker/token pair no
	// longer matches the job: the lease expired and the job was requeued (or
	// already finished), so the caller's attempt is void.
	ErrLeaseLost = errors.New("lease lost")
	// ErrUnknownJob names a job ID the queue has never seen.
	ErrUnknownJob = errors.New("unknown job")
)

// Queue metric names (global obs registry).
const (
	MetricQueueDepth      = "reveal_jobs_queue_depth"
	MetricJobsRunning     = "reveal_jobs_running"
	MetricJobsTotal       = "reveal_jobs_total" // labeled {state="submitted|done|failed|retried"}
	MetricWorkersTotal    = "reveal_workers_total"
	MetricWorkersBusy     = "reveal_workers_busy"
	MetricQueueWait       = "reveal_jobs_queue_wait_seconds"       // labeled {kind=...}
	MetricAttemptDuration = "reveal_jobs_attempt_duration_seconds" // labeled {kind=...}
	MetricTenantJobs      = "reveal_tenant_jobs_total"             // labeled {tenant=...}
	MetricJobsLeased      = "reveal_jobs_leased"                   // gauge: leases currently held
	MetricLeaseExpired    = "reveal_jobs_lease_expired_total"
	MetricJobsRejected    = "reveal_jobs_rejected_total" // labeled {reason="queue_full|over_quota"}
)

// Label cardinality caps for the queue's metric vectors. Job kinds are a
// small fixed set; tenants are caller-controlled strings, so past the cap
// new tenants collapse onto the obs.OverflowLabel series.
const (
	maxKindLabels   = 16
	maxTenantLabels = 64
)

// Spec describes one job at submission time.
type Spec struct {
	// Kind tags the workload (the runner dispatches on it).
	Kind string
	// Payload is the opaque job input (e.g. a campaign spec).
	Payload any
	// MaxAttempts bounds execution attempts; 0 uses the queue default.
	MaxAttempts int
	// Timeout, when positive, sets the job deadline to submission time +
	// Timeout. The deadline is absolute: it covers queue wait, every
	// attempt, and every backoff pause.
	Timeout time.Duration
	// TraceID is the request trace identity minted (or adopted) by the HTTP
	// layer; the queue stamps it on every event, log line, and flow event
	// the job produces.
	TraceID string
	// Tenant attributes the job to a client identity for the per-tenant
	// counters ("" = untagged).
	Tenant string
}

// Job is one queued campaign. All fields are owned by the queue and must
// only be read through Snapshot (or inside the runner, which receives the
// job while it is exclusively running).
type Job struct {
	ID          string
	Kind        string
	TraceID     string
	Tenant      string
	Payload     any
	State       State
	Attempts    int
	MaxAttempts int
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
	// FirstClaimedAt marks the first time a worker claimed the job; the gap
	// from SubmittedAt is the queue wait, the gap to FinishedAt is the run
	// time (retries and backoff included).
	FirstClaimedAt time.Time
	// NotBefore gates retried jobs until their backoff expires.
	NotBefore time.Time
	// Deadline, when non-zero, fails the job once passed (queued or
	// running; a running attempt is canceled through its context).
	Deadline time.Time
	Error    string
	Result   any
	// LeaseWorker and LeaseExpiry are set while a fabric worker holds the
	// job's lease (a leased job is StateRunning); the reaper requeues the job
	// once LeaseExpiry passes without a renewal.
	LeaseWorker string
	LeaseExpiry time.Time

	seq      uint64
	canceled bool
	cancel   func() // cancels the running attempt's context
	// leaseToken authenticates renewals/completions for the current lease;
	// it rotates on every grant, so a worker whose lease expired (and whose
	// job was re-leased elsewhere) cannot complete the newer attempt.
	leaseToken string
	// payloadRaw is the serialized payload, populated at submit when a WAL
	// journals the queue (and lazily at first lease otherwise).
	payloadRaw json.RawMessage
}

// Status is the JSON-safe snapshot of a job served by the HTTP API.
type Status struct {
	ID          string     `json:"id"`
	Kind        string     `json:"kind"`
	TraceID     string     `json:"trace_id,omitempty"`
	Tenant      string     `json:"tenant,omitempty"`
	State       State      `json:"state"`
	Attempts    int        `json:"attempts"`
	MaxAttempts int        `json:"max_attempts"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	NotBefore   *time.Time `json:"not_before,omitempty"`
	Deadline    *time.Time `json:"deadline,omitempty"`
	// QueueWaitSeconds is submission → first claim (absent while queued).
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
	// RunSeconds is first claim → finish, covering every attempt and
	// backoff pause; for a still-running job it is first claim → now.
	RunSeconds  float64    `json:"run_seconds,omitempty"`
	Error       string     `json:"error,omitempty"`
	Result      any        `json:"result,omitempty"`
	LeaseWorker string     `json:"lease_worker,omitempty"`
	LeaseExpiry *time.Time `json:"lease_expiry,omitempty"`
}

func optTime(t time.Time) *time.Time {
	if t.IsZero() {
		return nil
	}
	tt := t
	return &tt
}

// snapshot copies the job; the queue lock must be held.
func (j *Job) snapshot() Status {
	st := Status{
		ID:          j.ID,
		Kind:        j.Kind,
		TraceID:     j.TraceID,
		Tenant:      j.Tenant,
		State:       j.State,
		Attempts:    j.Attempts,
		MaxAttempts: j.MaxAttempts,
		SubmittedAt: j.SubmittedAt,
		StartedAt:   optTime(j.StartedAt),
		FinishedAt:  optTime(j.FinishedAt),
		NotBefore:   optTime(j.NotBefore),
		Deadline:    optTime(j.Deadline),
		Error:       j.Error,
		Result:      j.Result,
		LeaseWorker: j.LeaseWorker,
		LeaseExpiry: optTime(j.LeaseExpiry),
	}
	if !j.FirstClaimedAt.IsZero() {
		st.QueueWaitSeconds = j.FirstClaimedAt.Sub(j.SubmittedAt).Seconds()
		end := j.FinishedAt
		if end.IsZero() {
			end = time.Now()
		}
		st.RunSeconds = end.Sub(j.FirstClaimedAt).Seconds()
	}
	return st
}

// Options configures a Queue.
type Options struct {
	// MaxAttempts is the default attempt budget per job (minimum 1).
	MaxAttempts int
	// BackoffBase is the first retry delay; attempt k waits
	// BackoffBase·2^(k−1), scaled by jitter and capped at BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay.
	BackoffMax time.Duration
	// JitterSeed seeds the deterministic backoff jitter PRNG.
	JitterSeed uint64
	// Capacity bounds queued+running jobs; 0 means unbounded. Over-capacity
	// submissions fail with ErrQueueFull.
	Capacity int
	// TenantQuota bounds queued+running jobs per tenant (the empty tenant
	// included); 0 means unlimited. Over-quota submissions fail with
	// ErrOverQuota.
	TenantQuota int
	// WAL, when non-nil, journals every job lifecycle transition so the
	// queue survives a process crash: call Restore right after NewQueue to
	// replay it, and SnapshotWAL periodically to bound replay time.
	WAL *wal.Log
}

// DefaultOptions returns the daemon defaults: 3 attempts, 500 ms base
// backoff capped at 30 s.
func DefaultOptions() Options {
	return Options{MaxAttempts: 3, BackoffBase: 500 * time.Millisecond, BackoffMax: 30 * time.Second}
}

// KindStats aggregates per-workload-kind throughput for /api/v1/stats and
// the revealctl top dashboard.
type KindStats struct {
	Kind      string `json:"kind"`
	Submitted int64  `json:"submitted"`
	Done      int64  `json:"done"`
	Failed    int64  `json:"failed"`
	Retried   int64  `json:"retried,omitempty"`
	Queued    int    `json:"queued,omitempty"`
	Running   int    `json:"running,omitempty"`
}

// queueMetrics is the queue's pre-bound metric family. Every series is
// resolved against the global registry once (at NewQueue / first label
// use) instead of re-rendering a fmt.Sprintf key per event, so the
// per-transition cost is a map read plus an atomic add. All fields are
// nil-safe when observability is disabled.
type queueMetrics struct {
	depth        *obs.Gauge
	running      *obs.Gauge
	leased       *obs.Gauge
	byState      *obs.CounterVec   // reveal_jobs_total{state=...}
	queueWait    *obs.HistogramVec // reveal_jobs_queue_wait_seconds{kind=...}
	attemptDur   *obs.HistogramVec // reveal_jobs_attempt_duration_seconds{kind=...}
	tenantJobs   *obs.CounterVec   // reveal_tenant_jobs_total{tenant=...}
	rejected     *obs.CounterVec   // reveal_jobs_rejected_total{reason=...}
	leaseExpired *obs.Counter
}

func newQueueMetrics() queueMetrics {
	reg := obs.Global().Registry()
	return queueMetrics{
		depth:        reg.Gauge(MetricQueueDepth),
		running:      reg.Gauge(MetricJobsRunning),
		leased:       reg.Gauge(MetricJobsLeased),
		byState:      reg.CounterVec(MetricJobsTotal, "state", 8),
		queueWait:    reg.HistogramVec(MetricQueueWait, "kind", maxKindLabels),
		attemptDur:   reg.HistogramVec(MetricAttemptDuration, "kind", maxKindLabels),
		tenantJobs:   reg.CounterVec(MetricTenantJobs, "tenant", maxTenantLabels),
		rejected:     reg.CounterVec(MetricJobsRejected, "reason", 4),
		leaseExpired: reg.Counter(MetricLeaseExpired),
	}
}

// Queue is the in-memory job queue. Safe for concurrent use.
type Queue struct {
	mu      sync.Mutex
	opts    Options
	jobs    map[string]*Job
	byAge   []*Job // submission order (seq ascending), terminal jobs included
	byKind  map[string]*KindStats
	seq     uint64
	accept  bool
	wake    chan struct{}
	jitter  sampler.PRNG
	queued  int
	running int
	leased  int // subset of running held under fabric leases
	// tenantActive counts queued+running jobs per tenant for TenantQuota.
	tenantActive map[string]int
	metrics      queueMetrics
}

// NewQueue builds an empty queue. The queue's metrics bind to the global
// obs recorder installed at call time, so install the recorder first.
func NewQueue(opts Options) *Queue {
	if opts.MaxAttempts < 1 {
		opts.MaxAttempts = 1
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 500 * time.Millisecond
	}
	if opts.BackoffMax < opts.BackoffBase {
		opts.BackoffMax = 30 * time.Second
	}
	return &Queue{
		opts:         opts,
		jobs:         map[string]*Job{},
		byKind:       map[string]*KindStats{},
		accept:       true,
		wake:         make(chan struct{}),
		jitter:       sampler.NewXoshiro256(opts.JitterSeed ^ 0x9042),
		tenantActive: map[string]int{},
		metrics:      newQueueMetrics(),
	}
}

// broadcast wakes every waiting worker; q.mu must be held.
func (q *Queue) broadcast() {
	close(q.wake)
	q.wake = make(chan struct{})
}

func (q *Queue) gauges() {
	q.metrics.depth.Set(float64(q.queued))
	q.metrics.running.Set(float64(q.running))
	q.metrics.leased.Set(float64(q.leased))
}

// kindLocked returns the per-kind aggregate, creating it on first use;
// q.mu must be held.
func (q *Queue) kindLocked(kind string) *KindStats {
	ks := q.byKind[kind]
	if ks == nil {
		ks = &KindStats{Kind: kind}
		q.byKind[kind] = ks
	}
	return ks
}

// StatsByKind returns the per-kind throughput aggregates sorted by kind.
func (q *Queue) StatsByKind() []KindStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(time.Now())
	out := make([]KindStats, 0, len(q.byKind))
	for _, ks := range q.byKind {
		out = append(out, *ks)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Kind < out[b].Kind })
	return out
}

// event stamps the job's identity onto a service-journal event and emits
// it on the global recorder (no-op when events are disabled).
func (j *Job) event(typ string, detail string) {
	obs.Emit(obs.ServiceEvent{
		Type:    typ,
		JobID:   j.ID,
		TraceID: j.TraceID,
		Kind:    j.Kind,
		Tenant:  j.Tenant,
		State:   string(j.State),
		Attempt: j.Attempts,
		Detail:  detail,
	})
}

// Submit enqueues a job and returns its snapshot. When the queue is over
// capacity (ErrQueueFull) or the tenant over quota (ErrOverQuota) the
// submission is rejected without side effects beyond the rejection counter.
func (q *Queue) Submit(spec Spec) (Status, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.accept {
		return Status{}, fmt.Errorf("jobs: queue is shutting down")
	}
	if q.opts.Capacity > 0 && q.queued+q.running >= q.opts.Capacity {
		q.metrics.rejected.With("queue_full").Inc()
		return Status{}, fmt.Errorf("jobs: %w (%d jobs)", ErrQueueFull, q.opts.Capacity)
	}
	if q.opts.TenantQuota > 0 && q.tenantActive[spec.Tenant] >= q.opts.TenantQuota {
		q.metrics.rejected.With("over_quota").Inc()
		return Status{}, fmt.Errorf("jobs: %w: tenant %q has %d active jobs (quota %d)",
			ErrOverQuota, spec.Tenant, q.tenantActive[spec.Tenant], q.opts.TenantQuota)
	}
	// Serialize the payload before committing the submit: the WAL's accept
	// boundary promises a 202 response survives a crash, which requires the
	// payload to be journalable.
	var payloadRaw json.RawMessage
	if q.opts.WAL != nil && spec.Payload != nil {
		raw, err := json.Marshal(spec.Payload)
		if err != nil {
			return Status{}, fmt.Errorf("jobs: payload not journalable: %w", err)
		}
		payloadRaw = raw
	}
	q.seq++
	maxAttempts := spec.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = q.opts.MaxAttempts
	}
	now := time.Now()
	j := &Job{
		ID:          fmt.Sprintf("job-%06d", q.seq),
		Kind:        spec.Kind,
		TraceID:     spec.TraceID,
		Tenant:      spec.Tenant,
		Payload:     spec.Payload,
		State:       StateQueued,
		MaxAttempts: maxAttempts,
		SubmittedAt: now,
		seq:         q.seq,
	}
	j.payloadRaw = payloadRaw
	if spec.Timeout > 0 {
		j.Deadline = now.Add(spec.Timeout)
	}
	q.jobs[j.ID] = j
	q.byAge = append(q.byAge, j)
	q.queued++
	q.tenantActive[j.Tenant]++
	ks := q.kindLocked(j.Kind)
	ks.Submitted++
	ks.Queued++
	q.metrics.byState.With("submitted").Inc()
	if j.Tenant != "" {
		q.metrics.tenantJobs.With(j.Tenant).Inc()
	}
	q.gauges()
	q.journalLocked(wal.RecSubmit, j)
	j.event(obs.EventJobSubmitted, "")
	obs.Log().Info("job submitted", "id", j.ID, "kind", j.Kind,
		"trace_id", j.TraceID, "tenant", j.Tenant,
		"max_attempts", j.MaxAttempts, "queue_depth", q.queued)
	q.broadcast()
	return j.snapshot(), nil
}

// reapLocked fails queued jobs whose deadline has passed and reclaims
// expired leases (the holder stopped heartbeating: the job requeues with
// the usual retry backoff, or fails when its deadline or attempt budget is
// spent). It runs on every queue observation (and inside claim/Lease), so
// expiry does not depend on an idle worker scanning the queue; q.mu must
// be held.
func (q *Queue) reapLocked(now time.Time) {
	for _, j := range q.byAge {
		switch {
		case j.State == StateQueued && !j.Deadline.IsZero() && now.After(j.Deadline):
			q.finalizeLocked(j, StateFailed, "deadline exceeded while queued")
		case j.State == StateRunning && j.LeaseWorker != "" && now.After(j.LeaseExpiry):
			q.expireLeaseLocked(j, now)
		}
	}
}

// Get returns a job snapshot.
func (q *Queue) Get(id string) (Status, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(time.Now())
	j, ok := q.jobs[id]
	if !ok {
		return Status{}, false
	}
	return j.snapshot(), true
}

// Kind returns a job's workload kind ("" for unknown IDs) — used by the
// fabric completion handler to decode results before taking the verdict.
func (q *Queue) Kind(id string) string {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[id]; ok {
		return j.Kind
	}
	return ""
}

// Leased returns how many jobs are currently held under fabric leases.
func (q *Queue) Leased() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(time.Now())
	return q.leased
}

// List returns every job in submission order.
func (q *Queue) List() []Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(time.Now())
	out := make([]Status, 0, len(q.byAge))
	for _, j := range q.byAge {
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Depth returns (queued, running) counts.
func (q *Queue) Depth() (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(time.Now())
	return q.queued, q.running
}

// Cancel aborts a job: a queued job fails immediately, a running job has
// its context canceled (the worker then marks it failed). Canceling a
// finished job is a no-op.
func (q *Queue) Cancel(id string) error {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return fmt.Errorf("jobs: unknown job %s", id)
	}
	var cancel func()
	switch j.State {
	case StateQueued:
		j.canceled = true
		q.finalizeLocked(j, StateFailed, "canceled")
	case StateRunning:
		j.canceled = true
		cancel = j.cancel
	}
	q.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// StopAccepting rejects further submissions (drain mode) — the exported
// form used by pool-less coordinators, which have no jobs.Pool to drain
// through.
func (q *Queue) StopAccepting() { q.stopAccepting() }

// stopAccepting rejects further submissions (drain mode).
func (q *Queue) stopAccepting() {
	q.mu.Lock()
	q.accept = false
	q.broadcast()
	q.mu.Unlock()
}

// claim hands the oldest eligible queued job to a worker. When no job is
// eligible it returns the wait until the next backoff gate expires (0 when
// nothing is pending at all) plus the wake channel to select on. Queued
// jobs whose deadline has passed are failed during the scan.
func (q *Queue) claim(now time.Time) (j *Job, wait time.Duration, wake <-chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(now)
	best, wait := q.nextQueuedLocked(now)
	if best == nil {
		return nil, wait, q.wake
	}
	q.startLocked(best, now)
	q.journalLocked(wal.RecStart, best)
	best.event(obs.EventJobClaimed, "")
	obs.Log().Debug("job claimed", "id", best.ID, "attempt", best.Attempts,
		"trace_id", best.TraceID)
	return best, 0, nil
}

// nextQueuedLocked scans for the oldest eligible queued job. When none is
// eligible it returns the wait until the next backoff gate expires (0 when
// nothing is pending at all); q.mu must be held.
func (q *Queue) nextQueuedLocked(now time.Time) (*Job, time.Duration) {
	var next time.Time
	var best *Job
	for _, cand := range q.byAge {
		if cand.State != StateQueued {
			continue
		}
		if cand.NotBefore.After(now) {
			if next.IsZero() || cand.NotBefore.Before(next) {
				next = cand.NotBefore
			}
			continue
		}
		if best == nil || cand.seq < best.seq {
			best = cand
		}
	}
	if best != nil {
		return best, 0
	}
	var wait time.Duration
	if !next.IsZero() {
		wait = time.Until(next)
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
	}
	return nil, wait
}

// startLocked moves a queued job into StateRunning for its next attempt
// (shared by the local pool's claim and the fabric Lease); q.mu must be
// held.
func (q *Queue) startLocked(j *Job, now time.Time) {
	j.State = StateRunning
	j.Attempts++
	j.StartedAt = now
	if j.FirstClaimedAt.IsZero() {
		j.FirstClaimedAt = now
		q.metrics.queueWait.With(j.Kind).Observe(now.Sub(j.SubmittedAt).Seconds())
	}
	q.queued--
	q.running++
	ks := q.kindLocked(j.Kind)
	ks.Queued--
	ks.Running++
	q.gauges()
}

// finalizeLocked moves a job to a terminal state; q.mu must be held.
func (q *Queue) finalizeLocked(j *Job, state State, errMsg string) {
	ks := q.kindLocked(j.Kind)
	if j.State == StateQueued {
		q.queued--
		ks.Queued--
	} else if j.State == StateRunning {
		q.running--
		ks.Running--
	}
	if j.State != StateDone && j.State != StateFailed {
		q.tenantActive[j.Tenant]--
		if q.tenantActive[j.Tenant] <= 0 {
			delete(q.tenantActive, j.Tenant)
		}
	}
	if j.LeaseWorker != "" {
		q.leased--
		j.LeaseWorker, j.leaseToken, j.LeaseExpiry = "", "", time.Time{}
	}
	j.State = state
	j.Error = errMsg
	j.FinishedAt = time.Now()
	j.cancel = nil
	j.NotBefore = time.Time{}
	if state == StateDone {
		ks.Done++
		q.metrics.byState.With("done").Inc()
	} else {
		ks.Failed++
		q.metrics.byState.With("failed").Inc()
	}
	q.gauges()
	q.journalLocked(wal.RecFinish, j)
	j.event(obs.EventJobFinished, errMsg)
	if j.TraceID != "" {
		obs.FlowEvent(j.TraceID, obs.FlowEnd, "finished", map[string]any{
			"job_id": j.ID, "state": string(state), "attempts": j.Attempts,
		})
	}
	obs.Log().Info("job finished", "id", j.ID, "state", string(state),
		"trace_id", j.TraceID, "attempts", j.Attempts, "error", errMsg)
	q.broadcast()
}

// backoffLocked computes the jittered exponential backoff for the given
// attempt number (1-based); q.mu must be held (the jitter PRNG is shared).
func (q *Queue) backoffLocked(attempt int) time.Duration {
	d := q.opts.BackoffBase
	for i := 1; i < attempt && d < q.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > q.opts.BackoffMax {
		d = q.opts.BackoffMax
	}
	// Jitter in [0.5, 1.5): desynchronizes retry herds while keeping the
	// exponential envelope.
	return time.Duration(float64(d) * (0.5 + sampler.Float64(q.jitter)))
}

// complete records one finished attempt: success, retryable failure (back
// to queued with backoff), or terminal failure (cancellation, deadline, or
// attempt budget exhausted).
func (q *Queue) complete(j *Job, result any, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j.cancel = nil
	if !j.StartedAt.IsZero() {
		q.metrics.attemptDur.With(j.Kind).Observe(time.Since(j.StartedAt).Seconds())
	}
	switch {
	case err == nil:
		j.Result = result
		q.finalizeLocked(j, StateDone, "")
	case j.canceled:
		q.finalizeLocked(j, StateFailed, "canceled")
	case !j.Deadline.IsZero() && time.Now().After(j.Deadline):
		q.finalizeLocked(j, StateFailed, fmt.Sprintf("deadline exceeded: %v", err))
	case j.Attempts < j.MaxAttempts:
		q.retryLocked(j, time.Now(), err.Error())
	default:
		q.finalizeLocked(j, StateFailed, err.Error())
	}
}

// retryLocked requeues a running job for its next attempt with jittered
// exponential backoff (the caller has checked the attempt budget); q.mu
// must be held.
func (q *Queue) retryLocked(j *Job, now time.Time, errMsg string) {
	backoff := q.backoffLocked(j.Attempts)
	j.State = StateQueued
	j.NotBefore = now.Add(backoff)
	j.Error = errMsg
	q.running--
	q.queued++
	ks := q.kindLocked(j.Kind)
	ks.Running--
	ks.Queued++
	ks.Retried++
	q.metrics.byState.With("retried").Inc()
	q.gauges()
	q.journalLocked(wal.RecRetry, j)
	j.event(obs.EventJobRetried, errMsg)
	obs.Log().Warn("job attempt failed, retrying", "id", j.ID,
		"trace_id", j.TraceID, "attempt", j.Attempts,
		"max_attempts", j.MaxAttempts, "backoff", backoff, "error", errMsg)
	q.broadcast()
}
