package jobs

import (
	"encoding/json"
	"fmt"
	"time"

	"reveal/internal/jobs/wal"
	"reveal/internal/obs"
)

// DefaultLeaseTTL is the lease duration used when a worker does not ask
// for one. Workers renew at a fraction of the TTL, so the value trades
// failure-detection latency against heartbeat traffic.
const DefaultLeaseTTL = 15 * time.Second

// LeasedJob is the coordinator→worker handoff for one leased job: enough
// to execute the attempt remotely and to authenticate its renewals and
// completion. The payload crosses the wire serialized; the worker decodes
// it by Kind.
type LeasedJob struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	TraceID     string          `json:"trace_id,omitempty"`
	Tenant      string          `json:"tenant,omitempty"`
	Attempts    int             `json:"attempts"`
	MaxAttempts int             `json:"max_attempts"`
	Token       string          `json:"token"`
	Payload     json.RawMessage `json:"payload,omitempty"`
	Deadline    time.Time       `json:"deadline"`
	LeaseExpiry time.Time       `json:"lease_expiry"`
}

// Lease hands the oldest eligible queued job to a fabric worker under a
// TTL lease (ttl <= 0 uses DefaultLeaseTTL). Like claim, when no job is
// eligible it returns the wait until the next backoff gate expires plus
// the wake channel to select on, so the HTTP handler can long-poll.
func (q *Queue) Lease(worker string, ttl time.Duration) (lj *LeasedJob, wait time.Duration, wake <-chan struct{}, err error) {
	if worker == "" {
		return nil, 0, nil, fmt.Errorf("jobs: lease requires a worker id")
	}
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(now)
	j, wait := q.nextQueuedLocked(now)
	if j == nil {
		return nil, wait, q.wake, nil
	}
	// The payload must serialize to travel to the worker; without a WAL it
	// was not marshaled at submit, so do it now (once — the bytes are kept).
	if j.payloadRaw == nil && j.Payload != nil {
		raw, merr := json.Marshal(j.Payload)
		if merr != nil {
			q.finalizeLocked(j, StateFailed, fmt.Sprintf("payload not serializable for lease: %v", merr))
			return nil, 0, nil, fmt.Errorf("jobs: payload of %s not serializable: %w", j.ID, merr)
		}
		j.payloadRaw = raw
	}
	q.startLocked(j, now)
	j.LeaseWorker = worker
	j.LeaseExpiry = now.Add(ttl)
	j.leaseToken = fmt.Sprintf("lease-%016x", q.jitter.Uint64())
	q.leased++
	q.gauges()
	q.journalLocked(wal.RecLease, j)
	j.event(obs.EventJobLeased, worker)
	obs.Log().Debug("job leased", "id", j.ID, "worker", worker,
		"attempt", j.Attempts, "ttl", ttl, "trace_id", j.TraceID)
	return &LeasedJob{
		ID:          j.ID,
		Kind:        j.Kind,
		TraceID:     j.TraceID,
		Tenant:      j.Tenant,
		Attempts:    j.Attempts,
		MaxAttempts: j.MaxAttempts,
		Token:       j.leaseToken,
		Payload:     j.payloadRaw,
		Deadline:    j.Deadline,
		LeaseExpiry: j.LeaseExpiry,
	}, 0, nil, nil
}

// leaseHolderLocked validates that (worker, token) still holds the lease
// on job id; q.mu must be held.
func (q *Queue) leaseHolderLocked(id, worker, token string) (*Job, error) {
	j, ok := q.jobs[id]
	if !ok {
		return nil, fmt.Errorf("jobs: %w: %s", ErrUnknownJob, id)
	}
	if j.State != StateRunning || j.LeaseWorker != worker || j.leaseToken != token || token == "" {
		return nil, fmt.Errorf("jobs: %w: %s is %s (lease %q)", ErrLeaseLost, id, j.State, j.LeaseWorker)
	}
	return j, nil
}

// RenewLease extends a held lease by ttl (<= 0 uses DefaultLeaseTTL) and
// returns the new expiry. A canceled job renews with an error carrying the
// cancellation so the worker aborts the attempt.
func (q *Queue) RenewLease(id, worker, token string, ttl time.Duration) (time.Time, error) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(now)
	j, err := q.leaseHolderLocked(id, worker, token)
	if err != nil {
		return time.Time{}, err
	}
	if j.canceled {
		return time.Time{}, fmt.Errorf("jobs: %w: %s was canceled", ErrLeaseLost, id)
	}
	j.LeaseExpiry = now.Add(ttl)
	q.journalLocked(wal.RecLease, j)
	return j.LeaseExpiry, nil
}

// CompleteLease records the outcome of a leased attempt: success (errMsg
// empty), retryable failure, or terminal failure — the same semantics the
// local pool's completion path applies. A completion whose lease was lost
// (expired and requeued, or finished elsewhere) is rejected with
// ErrLeaseLost, which makes duplicate completions idempotent: only the
// current lease holder's verdict counts.
func (q *Queue) CompleteLease(id, worker, token string, result any, errMsg string) (Status, error) {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(now)
	j, err := q.leaseHolderLocked(id, worker, token)
	if err != nil {
		return Status{}, err
	}
	if !j.StartedAt.IsZero() {
		q.metrics.attemptDur.With(j.Kind).Observe(now.Sub(j.StartedAt).Seconds())
	}
	// The attempt is over either way: release the lease before routing the
	// outcome so finalize/retry see an unleased running job.
	q.leased--
	j.LeaseWorker, j.leaseToken, j.LeaseExpiry = "", "", time.Time{}
	switch {
	case errMsg == "":
		j.Result = result
		q.finalizeLocked(j, StateDone, "")
	case j.canceled:
		q.finalizeLocked(j, StateFailed, "canceled")
	case !j.Deadline.IsZero() && now.After(j.Deadline):
		q.finalizeLocked(j, StateFailed, fmt.Sprintf("deadline exceeded: %s", errMsg))
	case j.Attempts < j.MaxAttempts:
		q.retryLocked(j, now, errMsg)
	default:
		q.finalizeLocked(j, StateFailed, errMsg)
	}
	return j.snapshot(), nil
}

// expireLeaseLocked reclaims a lease whose holder stopped heartbeating:
// the job requeues with the usual retry backoff, or fails when its
// deadline passed while leased (journaled as job_expired naming the dead
// holder) or its attempt budget is spent; q.mu must be held.
func (q *Queue) expireLeaseLocked(j *Job, now time.Time) {
	holder := j.LeaseWorker
	q.leased--
	j.LeaseWorker, j.leaseToken, j.LeaseExpiry = "", "", time.Time{}
	q.metrics.leaseExpired.Inc()
	obs.Log().Warn("lease expired", "id", j.ID, "worker", holder,
		"attempt", j.Attempts, "trace_id", j.TraceID)
	switch {
	case !j.Deadline.IsZero() && now.After(j.Deadline):
		j.event(obs.EventJobExpired, "deadline exceeded while leased by "+holder)
		q.finalizeLocked(j, StateFailed, "deadline exceeded while leased by "+holder)
	case j.canceled:
		j.event(obs.EventLeaseExpired, holder)
		q.finalizeLocked(j, StateFailed, "canceled")
	case j.Attempts < j.MaxAttempts:
		j.event(obs.EventLeaseExpired, holder)
		q.retryLocked(j, now, "lease expired (worker "+holder+")")
	default:
		j.event(obs.EventLeaseExpired, holder)
		q.finalizeLocked(j, StateFailed, "lease expired on final attempt (worker "+holder+")")
	}
}
