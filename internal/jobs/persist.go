package jobs

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"reveal/internal/jobs/wal"
	"reveal/internal/obs"
)

// journalLocked appends one lifecycle record for j to the WAL (no-op
// without one). Submit records carry the full job image; the rest are
// deltas merged by ID during replay. Append failures are logged, not
// fatal: a sick disk must not wedge the queue, it only weakens the
// crash-recovery guarantee until the operator notices; q.mu must be held.
func (q *Queue) journalLocked(typ wal.RecordType, j *Job) {
	if q.opts.WAL == nil {
		return
	}
	if _, err := q.opts.WAL.Append(wal.Record{Type: typ, Job: q.imageLocked(j, typ == wal.RecSubmit)}); err != nil {
		obs.Log().Error("wal append failed", "id", j.ID, "type", string(typ), "error", err)
	}
}

// imageLocked renders j as a WAL job image — full (identity + payload)
// for submit records and snapshots, delta otherwise; q.mu must be held.
func (q *Queue) imageLocked(j *Job, full bool) wal.JobImage {
	img := wal.JobImage{
		ID:          j.ID,
		State:       string(j.State),
		Attempts:    j.Attempts,
		NotBefore:   j.NotBefore,
		LeaseWorker: j.LeaseWorker,
		LeaseExpiry: j.LeaseExpiry,
		Error:       j.Error,
		FinishedAt:  j.FinishedAt,
	}
	if full {
		img.Kind = j.Kind
		img.TraceID = j.TraceID
		img.Tenant = j.Tenant
		img.Payload = j.payloadRaw
		img.MaxAttempts = j.MaxAttempts
		img.SubmittedAt = j.SubmittedAt
		img.Deadline = j.Deadline
	}
	if j.Result != nil {
		if raw, err := json.Marshal(j.Result); err == nil {
			img.Result = raw
		}
	}
	return img
}

// Restore loads a WAL replay into an empty queue: terminal jobs are kept
// for status queries, and every non-terminal job — queued, or running when
// the previous process died mid-attempt or mid-lease — is re-enqueued for
// another attempt (at-least-once execution). decode turns a journaled
// payload back into the runner's in-memory form by kind; a payload that no
// longer decodes fails its job rather than poisoning the pool. Call it
// after NewQueue and before the first Submit or worker start.
func (q *Queue) Restore(rep *wal.Replay, decode func(kind string, payload json.RawMessage) (any, error)) (requeued, terminal int) {
	if rep == nil {
		return 0, 0
	}
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	if rep.JobSeq > q.seq {
		q.seq = rep.JobSeq
	}
	imgs := make([]wal.JobImage, len(rep.Jobs))
	copy(imgs, rep.Jobs)
	sort.Slice(imgs, func(a, b int) bool { return jobSeqOf(imgs[a].ID) < jobSeqOf(imgs[b].ID) })
	for _, img := range imgs {
		if img.ID == "" || q.jobs[img.ID] != nil {
			continue
		}
		seq := jobSeqOf(img.ID)
		if seq > q.seq {
			q.seq = seq
		}
		j := &Job{
			ID:          img.ID,
			Kind:        img.Kind,
			TraceID:     img.TraceID,
			Tenant:      img.Tenant,
			Attempts:    img.Attempts,
			MaxAttempts: img.MaxAttempts,
			SubmittedAt: img.SubmittedAt,
			Deadline:    img.Deadline,
			Error:       img.Error,
			seq:         seq,
			payloadRaw:  img.Payload,
		}
		if j.MaxAttempts < 1 {
			j.MaxAttempts = q.opts.MaxAttempts
		}
		ks := q.kindLocked(j.Kind)
		ks.Submitted++
		q.metrics.byState.With("restored").Inc()
		fail := func(msg string) {
			j.State = StateFailed
			j.Error = msg
			j.FinishedAt = now
			ks.Failed++
			terminal++
		}
		switch State(img.State) {
		case StateDone, StateFailed:
			j.State = State(img.State)
			j.FinishedAt = img.FinishedAt
			if j.FinishedAt.IsZero() {
				j.FinishedAt = now
			}
			if len(img.Result) > 0 {
				var v any
				if json.Unmarshal(img.Result, &v) == nil {
					j.Result = v
				}
			}
			if j.State == StateDone {
				ks.Done++
			} else {
				ks.Failed++
			}
			terminal++
		default:
			switch {
			case img.Attempts >= j.MaxAttempts && img.State == string(StateRunning):
				// The process died during the final attempt; requeueing
				// would allow an unbounded crash loop to exceed the
				// attempt budget one restart at a time.
				fail("process restarted during final attempt")
			case len(img.Payload) > 0 && decode == nil:
				fail("restore: no payload decoder")
			default:
				if len(img.Payload) > 0 {
					p, err := decode(j.Kind, img.Payload)
					if err != nil {
						fail(fmt.Sprintf("restore: payload decode failed: %v", err))
						break
					}
					j.Payload = p
				}
				j.State = StateQueued
				j.NotBefore = img.NotBefore
				q.queued++
				ks.Queued++
				q.tenantActive[j.Tenant]++
				requeued++
			}
		}
		q.jobs[j.ID] = j
		q.byAge = append(q.byAge, j)
	}
	q.gauges()
	obs.Emit(obs.ServiceEvent{
		Type: obs.EventWALRestore,
		Detail: fmt.Sprintf("requeued %d, terminal %d, wal_seq %d, skipped %d, snapshot %v",
			requeued, terminal, rep.LastSeq, rep.Skipped, rep.SnapshotUsed),
	})
	obs.Log().Info("queue restored from WAL", "requeued", requeued,
		"terminal", terminal, "wal_seq", rep.LastSeq,
		"skipped", rep.Skipped, "snapshot", rep.SnapshotUsed)
	q.broadcast()
	return requeued, terminal
}

// jobSeqOf parses the numeric counter out of a job-%06d ID (0 when the ID
// does not match, which sorts foreign IDs first and never advances q.seq).
func jobSeqOf(id string) uint64 {
	var seq uint64
	if _, err := fmt.Sscanf(id, "job-%d", &seq); err != nil {
		return 0
	}
	return seq
}

// SnapshotWAL writes the full job table to the WAL snapshot, pruning every
// journal segment it covers. The queue lock is held across the write so
// no record can slip between the captured image and the snapshot's
// sequence horizon. No-op without a WAL.
func (q *Queue) SnapshotWAL() error {
	if q.opts.WAL == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	imgs := make([]wal.JobImage, 0, len(q.byAge))
	for _, j := range q.byAge {
		imgs = append(imgs, q.imageLocked(j, true))
	}
	return q.opts.WAL.Snapshot(q.seq, imgs)
}
