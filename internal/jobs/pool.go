package jobs

import (
	"context"
	"fmt"
	"sync"
	"time"

	"reveal/internal/obs"
)

// Runner executes one job attempt. The context is canceled when the job is
// canceled, its deadline passes, or the pool shuts down hard; runners must
// honor it promptly (the core stage boundaries already do).
type Runner func(ctx context.Context, job *Job) (any, error)

// Pool runs queued jobs on a fixed set of workers.
type Pool struct {
	queue   *Queue
	runner  Runner
	workers int

	mu   sync.Mutex
	busy int

	stop chan struct{} // closed by Shutdown: stop claiming new jobs
	kill chan struct{} // closed on drain timeout: cancel running jobs
	done chan struct{} // closed when every worker has exited

	startOnce sync.Once
	stopOnce  sync.Once
	killOnce  sync.Once
}

// NewPool builds a pool of `workers` goroutines (minimum 1) draining queue
// through runner. Call Start to begin execution.
func NewPool(queue *Queue, workers int, runner Runner) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{
		queue:   queue,
		runner:  runner,
		workers: workers,
		stop:    make(chan struct{}),
		kill:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the workers. Safe to call once; later calls are no-ops.
func (p *Pool) Start() {
	p.startOnce.Do(func() {
		obs.Global().Registry().Gauge(MetricWorkersTotal).Set(float64(p.workers))
		var wg sync.WaitGroup
		wg.Add(p.workers)
		for w := 0; w < p.workers; w++ {
			go func(id int) {
				defer wg.Done()
				p.work(id)
			}(w)
		}
		go func() {
			wg.Wait()
			close(p.done)
		}()
		obs.Log().Info("worker pool started", "workers", p.workers)
	})
}

// Shutdown drains the pool: the queue stops accepting submissions, workers
// stop claiming jobs, and running jobs are allowed to finish until ctx
// expires — then their contexts are canceled and the shutdown waits for
// the (now aborting) workers to exit. Returns nil on a clean drain and the
// ctx error when the hard stop was needed.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.queue.stopAccepting()
	p.stopOnce.Do(func() { close(p.stop) })
	select {
	case <-p.done:
		obs.Log().Info("worker pool drained")
		return nil
	case <-ctx.Done():
	}
	p.killOnce.Do(func() { close(p.kill) })
	obs.Log().Warn("worker pool drain timed out, canceling running jobs")
	<-p.done
	return fmt.Errorf("jobs: drain timed out: %w", ctx.Err())
}

// setBusy tracks worker utilization for the /metrics gauges.
func (p *Pool) setBusy(delta int) {
	p.mu.Lock()
	p.busy += delta
	busy := p.busy
	p.mu.Unlock()
	obs.Global().Registry().Gauge(MetricWorkersBusy).Set(float64(busy))
}

// Stats returns the pool size and the number of workers currently
// executing a job (for /api/v1/stats and the top dashboard).
func (p *Pool) Stats() (workers, busy int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workers, p.busy
}

// work is one worker's claim/execute loop.
func (p *Pool) work(id int) {
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		now := time.Now()
		job, wait, wake := p.queue.claim(now)
		if job == nil {
			// Nothing eligible: sleep until the next backoff gate expires, a
			// submission/retry wakes us, or the pool stops.
			var timer <-chan time.Time
			var t *time.Timer
			if wait > 0 {
				t = time.NewTimer(wait)
				timer = t.C
			}
			select {
			case <-p.stop:
			case <-wake:
			case <-timer:
			}
			if t != nil {
				t.Stop()
			}
			continue
		}
		p.runOne(id, job)
	}
}

// runOne executes a single claimed attempt and reports it back to the
// queue (which decides done / retry / failed).
func (p *Pool) runOne(id int, job *Job) {
	p.setBusy(1)
	defer p.setBusy(-1)

	base := context.Background()
	if job.TraceID != "" {
		// The job carries the request's trace identity across the queue
		// boundary: every span, log line, and coefficient event the runner
		// produces under this context is stamped with the same trace ID the
		// HTTP client saw in its response header.
		base = obs.WithTraceContext(base, obs.TraceContext{TraceID: job.TraceID})
		obs.FlowEvent(job.TraceID, obs.FlowStep, "attempt", map[string]any{
			"job_id": job.ID, "attempt": job.Attempts, "worker": id,
			"queue_wait_seconds": job.StartedAt.Sub(job.SubmittedAt).Seconds(),
		})
	}
	ctx, cancel := context.WithCancel(base)
	if !job.Deadline.IsZero() {
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithDeadline(ctx, job.Deadline)
		defer dcancel()
	}
	defer cancel()
	// Publish the cancel hook so Queue.Cancel reaches the running attempt,
	// and wire the pool's hard-kill switch to it too.
	p.queue.mu.Lock()
	job.cancel = cancel
	alreadyCanceled := job.canceled
	p.queue.mu.Unlock()
	if alreadyCanceled {
		cancel()
	}
	go func() {
		select {
		case <-p.kill:
			cancel()
		case <-ctx.Done():
		}
	}()

	sp := obs.StartSpanCtx(ctx, "job")
	sp.AddItems(1)
	result, err := func() (res any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("jobs: runner panicked: %v", r)
			}
		}()
		return p.runner(ctx, job)
	}()
	sp.End()
	if err != nil {
		obs.Log().Debug("job attempt errored", "worker", id, "id", job.ID, "error", err)
	}
	p.queue.complete(job, result, err)
}
