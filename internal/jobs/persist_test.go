package jobs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"reveal/internal/jobs/wal"
)

// walOptions builds fast queue options journaling into dir.
func walOptions(t *testing.T, dir string) Options {
	t.Helper()
	log, rep, err := wal.Open(wal.Options{Dir: dir, SyncSubmits: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = log.Close() })
	if len(rep.Jobs) != 0 {
		t.Fatalf("fresh WAL replayed %d jobs", len(rep.Jobs))
	}
	opts := fastOptions()
	opts.WAL = log
	return opts
}

// reopen simulates a process restart: a fresh WAL handle over the same
// directory (the "crashed" log's file handle is simply abandoned, like a
// killed process's would be), replayed into a fresh queue.
func reopen(t *testing.T, dir string, decode func(string, json.RawMessage) (any, error)) (*Queue, *wal.Replay, int, int) {
	t.Helper()
	log, rep, err := wal.Open(wal.Options{Dir: dir, SyncSubmits: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = log.Close() })
	opts := fastOptions()
	opts.WAL = log
	q := NewQueue(opts)
	requeued, terminal := q.Restore(rep, decode)
	return q, rep, requeued, terminal
}

// decodePayload is the test payload decoder: journaled payloads come back
// as generic maps.
func decodePayload(kind string, raw json.RawMessage) (any, error) {
	var v map[string]any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// TestCrashRecoveryLosesNoAcceptedJob is the WAL acceptance story: jobs in
// every non-terminal state at crash time (queued, leased-running) are
// re-enqueued on restart with their attempt history intact, finished jobs
// keep their results, and the job-ID counter resumes past the replayed
// maximum.
func TestCrashRecoveryLosesNoAcceptedJob(t *testing.T) {
	dir := t.TempDir()
	q := NewQueue(walOptions(t, dir))

	done, err := q.Submit(Spec{Kind: "t", Payload: map[string]any{"i": float64(1)}, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := q.Submit(Spec{Kind: "t", Payload: map[string]any{"i": float64(2)}, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	leased, err := q.Submit(Spec{Kind: "t", Payload: map[string]any{"i": float64(3)}, Tenant: "zap"})
	if err != nil {
		t.Fatal(err)
	}

	lj := leaseNow(t, q, "w1", time.Minute) // oldest: the to-be-done job
	if lj.ID != done.ID {
		t.Fatalf("leased %s, want oldest %s", lj.ID, done.ID)
	}
	if _, err := q.CompleteLease(lj.ID, "w1", lj.Token, map[string]any{"answer": float64(42)}, ""); err != nil {
		t.Fatal(err)
	}
	lj2 := leaseNow(t, q, "w2", time.Minute)
	if lj2.ID != leased.ID {
		// queued was submitted before leased; lease order is FIFO, so claim
		// the remaining one to leave `queued` waiting and `leased` running.
		lj2 = leaseNow(t, q, "w2", time.Minute)
	}

	// Crash: no snapshot, no graceful close — replay the journal tail alone.
	q2, rep, requeued, terminal := reopen(t, dir, decodePayload)
	if rep.SnapshotUsed {
		t.Fatal("no snapshot was written, but replay used one")
	}
	if requeued != 2 || terminal != 1 {
		t.Fatalf("restore = %d requeued, %d terminal; want 2, 1", requeued, terminal)
	}

	gotDone, ok := q2.Get(done.ID)
	if !ok || gotDone.State != StateDone {
		t.Fatalf("finished job after restart = %+v", gotDone)
	}
	if res, ok := gotDone.Result.(map[string]any); !ok || res["answer"] != float64(42) {
		t.Fatalf("finished job result lost: %+v", gotDone.Result)
	}
	for _, id := range []string{queued.ID, leased.ID} {
		st, ok := q2.Get(id)
		if !ok || st.State != StateQueued {
			t.Fatalf("job %s after restart = %+v, want queued", id, st)
		}
		if st.LeaseWorker != "" {
			t.Fatalf("job %s kept a dead lease: %+v", id, st)
		}
	}
	// The interrupted attempt is preserved, not erased.
	if st, _ := q2.Get(lj2.ID); st.Attempts != 1 {
		t.Fatalf("requeued running job attempts = %d, want 1", st.Attempts)
	}

	// The restored queue hands out work with decoded payloads and fresh IDs.
	lj3 := leaseNow(t, q2, "w3", time.Minute)
	next, err := q2.Submit(Spec{Kind: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID <= lj3.ID || next.ID == done.ID {
		t.Fatalf("post-restart ID %s did not advance past replayed jobs", next.ID)
	}
}

// TestCrashBetweenSnapshotAndTail: jobs submitted after a snapshot live
// only in the journal tail; a crash must surface both the snapshotted and
// the post-snapshot jobs.
func TestCrashBetweenSnapshotAndTail(t *testing.T) {
	dir := t.TempDir()
	q := NewQueue(walOptions(t, dir))
	before, err := q.Submit(Spec{Kind: "t", Payload: map[string]any{"phase": "pre"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.SnapshotWAL(); err != nil {
		t.Fatal(err)
	}
	after, err := q.Submit(Spec{Kind: "t", Payload: map[string]any{"phase": "post"}})
	if err != nil {
		t.Fatal(err)
	}

	q2, rep, requeued, terminal := reopen(t, dir, decodePayload)
	if !rep.SnapshotUsed {
		t.Fatal("snapshot not used on replay")
	}
	if requeued != 2 || terminal != 0 {
		t.Fatalf("restore = %d requeued, %d terminal; want 2, 0", requeued, terminal)
	}
	for _, id := range []string{before.ID, after.ID} {
		if st, ok := q2.Get(id); !ok || st.State != StateQueued {
			t.Fatalf("job %s = %+v, want queued", id, st)
		}
	}
	// Both jobs execute with their payloads intact.
	for i := 0; i < 2; i++ {
		lj := leaseNow(t, q2, "w", time.Minute)
		var p map[string]any
		if err := json.Unmarshal(lj.Payload, &p); err != nil || p["phase"] == nil {
			t.Fatalf("payload of %s = %s (%v)", lj.ID, lj.Payload, err)
		}
		if _, err := q2.CompleteLease(lj.ID, "w", lj.Token, "ok", ""); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestoreFinalAttemptCrashLoopBound: a job that was running its last
// attempt when the process died fails on restore instead of re-running —
// otherwise a job that crashes the coordinator would retry forever, one
// restart at a time.
func TestRestoreFinalAttemptCrashLoopBound(t *testing.T) {
	dir := t.TempDir()
	opts := walOptions(t, dir)
	opts.MaxAttempts = 1
	q := NewQueue(opts)
	st, err := q.Submit(Spec{Kind: "t"})
	if err != nil {
		t.Fatal(err)
	}
	leaseNow(t, q, "w1", time.Minute)

	q2, _, requeued, terminal := reopen(t, dir, decodePayload)
	if requeued != 0 || terminal != 1 {
		t.Fatalf("restore = %d requeued, %d terminal; want 0, 1", requeued, terminal)
	}
	got, _ := q2.Get(st.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "process restarted during final attempt") {
		t.Fatalf("job = %+v, want failed crash-loop bound", got)
	}
}

// TestRestoreUndecodablePayloadFails: a payload that no longer decodes
// (schema drift across a deploy) fails its job rather than poisoning the
// worker pool with a nil payload.
func TestRestoreUndecodablePayloadFails(t *testing.T) {
	dir := t.TempDir()
	q := NewQueue(walOptions(t, dir))
	st, err := q.Submit(Spec{Kind: "t", Payload: map[string]any{"v": float64(1)}})
	if err != nil {
		t.Fatal(err)
	}
	q2, _, requeued, terminal := reopen(t, dir, func(string, json.RawMessage) (any, error) {
		return nil, fmt.Errorf("schema moved on")
	})
	if requeued != 0 || terminal != 1 {
		t.Fatalf("restore = %d requeued, %d terminal; want 0, 1", requeued, terminal)
	}
	got, _ := q2.Get(st.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "payload decode failed") {
		t.Fatalf("job = %+v, want decode failure", got)
	}
}
