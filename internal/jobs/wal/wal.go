// Package wal is the persistent job store behind the campaign queue: an
// append-only write-ahead log of job lifecycle records plus a periodic
// snapshot, so a coordinator crash or restart loses zero accepted jobs.
//
// The on-disk layout under Options.Dir is
//
//	snapshot.json      full job-table image at some WAL sequence (atomic
//	                   tmp+rename write)
//	wal-00000001.jsonl lifecycle records after the snapshot, one JSON
//	                   object per line, rotated by size
//
// Replay applies the snapshot and then every record with a higher
// sequence number. Replay is crash-tolerant the same way the
// internal/obs/history segment store is: a torn tail (the writer died
// mid-line) is skipped and counted, and a segment with a torn tail is
// sealed — appends continue in a fresh segment so the torn bytes can
// never corrupt a later record boundary. Snapshotting prunes every
// segment whose records are fully covered by the snapshot.
package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// RecordType tags one WAL record.
type RecordType string

// The job lifecycle record types. Submit carries the full job image
// (including the serialized payload); the others are deltas merged onto
// the image by ID during replay.
const (
	RecSubmit RecordType = "submit"
	RecStart  RecordType = "start" // claimed by the local pool
	RecLease  RecordType = "lease" // leased to a fabric worker (grant or renewal)
	RecRetry  RecordType = "retry" // failed attempt, requeued with backoff
	RecFinish RecordType = "finish"
)

// JobImage is the durable image of one job. Submit records populate every
// identity field; later records carry only the fields that changed (the
// zero values are "unchanged" except State, which every record sets).
type JobImage struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind,omitempty"`
	TraceID     string          `json:"trace_id,omitempty"`
	Tenant      string          `json:"tenant,omitempty"`
	Payload     json.RawMessage `json:"payload,omitempty"`
	State       string          `json:"state,omitempty"`
	Attempts    int             `json:"attempts,omitempty"`
	MaxAttempts int             `json:"max_attempts,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	FinishedAt  time.Time       `json:"finished_at"`
	Deadline    time.Time       `json:"deadline"`
	NotBefore   time.Time       `json:"not_before"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	LeaseWorker string          `json:"lease_worker,omitempty"`
	LeaseExpiry time.Time       `json:"lease_expiry"`
}

// Record is one WAL line.
type Record struct {
	Seq  int64      `json:"seq"`
	Time time.Time  `json:"time"`
	Type RecordType `json:"type"`
	Job  JobImage   `json:"job"`
}

// Options configures a Log.
type Options struct {
	// Dir is the store directory (created when missing). Required.
	Dir string
	// MaxSegmentBytes rotates the active segment once it would exceed this
	// size (default 1 MiB).
	MaxSegmentBytes int64
	// SyncSubmits fsyncs the active segment after every RecSubmit append,
	// making the accept boundary durable: once the HTTP 202 left the
	// building, a crash cannot lose the job. Other record types ride on
	// rotation/snapshot/Close syncs — losing one re-runs a job
	// (at-least-once) but never loses it.
	SyncSubmits bool
	// SyncEvery additionally fsyncs after every N appends of any type
	// (0 = only the SyncSubmits policy).
	SyncEvery int
}

func (o *Options) normalize() {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 1 << 20
	}
}

// snapshotFile is the snapshot.json schema.
type snapshotFile struct {
	// WALSeq is the last WAL sequence number covered by this snapshot;
	// replay applies only records with Seq > WALSeq.
	WALSeq int64 `json:"wal_seq"`
	// JobSeq is the queue's job-ID counter at snapshot time.
	JobSeq uint64 `json:"job_seq"`
	// TakenAt stamps the snapshot.
	TakenAt time.Time  `json:"taken_at"`
	Jobs    []JobImage `json:"jobs"`
}

// Replay is the merged state reconstructed by Open.
type Replay struct {
	// Jobs holds one merged image per job, sorted by ID.
	Jobs []JobImage
	// JobSeq is the job-ID counter to resume from (max of the snapshot's
	// counter and every replayed submit).
	JobSeq uint64
	// LastSeq is the highest WAL sequence number seen.
	LastSeq int64
	// Skipped counts malformed or torn lines ignored during replay.
	Skipped int
	// SnapshotUsed reports whether a snapshot.json was loaded.
	SnapshotUsed bool
}

// segment is one on-disk WAL file plus the highest record seq it holds.
type segment struct {
	index   int
	path    string
	size    int64
	lastSeq int64
}

// Log is the append side of the WAL. Safe for concurrent use.
type Log struct {
	opts Options

	mu       sync.Mutex
	segments []segment
	seq      int64
	active   *os.File
	appends  int // appends since the last fsync (SyncEvery accounting)
	closed   bool
}

// Open loads (or creates) the WAL in opts.Dir, replaying the snapshot and
// every newer record into the returned Replay.
func Open(opts Options) (*Log, *Replay, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	opts.normalize()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	l := &Log{opts: opts}
	rep := &Replay{}

	jobs := map[string]*JobImage{}
	var covered int64 // WAL records with Seq <= covered live inside the snapshot
	if snap, err := readSnapshot(filepath.Join(opts.Dir, "snapshot.json")); err != nil {
		return nil, nil, err
	} else if snap != nil {
		rep.SnapshotUsed = true
		rep.JobSeq = snap.JobSeq
		rep.LastSeq = snap.WALSeq
		covered = snap.WALSeq
		for i := range snap.Jobs {
			img := snap.Jobs[i]
			jobs[img.ID] = &img
		}
	}

	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reading %s: %w", opts.Dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".jsonl") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	lastClean := true
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(name, "wal-%d.jsonl", &idx); err != nil {
			continue
		}
		path := filepath.Join(opts.Dir, name)
		seg, clean, err := replaySegment(path, idx, covered, jobs, rep)
		if err != nil {
			return nil, nil, err
		}
		l.segments = append(l.segments, seg)
		lastClean = clean
	}
	l.seq = rep.LastSeq
	// Reopen the newest segment for appending only when its tail is intact;
	// otherwise (torn tail, or no segments) the next append seals the torn
	// bytes behind a fresh segment boundary.
	if n := len(l.segments); n > 0 && lastClean && l.segments[n-1].size < opts.MaxSegmentBytes {
		f, err := os.OpenFile(l.segments[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reopening %s: %w", l.segments[n-1].path, err)
		}
		l.active = f
	}

	rep.Jobs = make([]JobImage, 0, len(jobs))
	for _, img := range jobs {
		rep.Jobs = append(rep.Jobs, *img)
	}
	sort.Slice(rep.Jobs, func(i, j int) bool { return rep.Jobs[i].ID < rep.Jobs[j].ID })
	return l, rep, nil
}

// readSnapshot loads snapshot.json; a missing file is not an error, and a
// corrupt one (crash mid-rename cannot happen, but a torn write of the tmp
// could have been renamed by an older implementation) falls back to
// replaying the WAL from the beginning.
func readSnapshot(path string) (*snapshotFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: reading snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, nil
	}
	return &snap, nil
}

// replaySegment applies one segment file onto the job table, skipping
// records already covered by the snapshot. clean reports whether every
// byte belonged to a well-formed record line.
func replaySegment(path string, idx int, covered int64, jobs map[string]*JobImage, rep *Replay) (segment, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segment{}, false, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	seg := segment{index: idx, path: path, size: int64(len(data))}
	clean := true
	for len(data) > 0 {
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		var line []byte
		if nl < 0 {
			line, data = data, nil
			clean = false // torn tail: the writer died mid-line
		} else {
			line, data = data[:nl], data[nl+1:]
		}
		if len(line) == 0 {
			continue
		}
		var rec Record
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.Seq <= 0 || rec.Job.ID == "" {
			rep.Skipped++
			clean = clean && nl >= 0
			continue
		}
		if rec.Seq > seg.lastSeq {
			seg.lastSeq = rec.Seq
		}
		if rec.Seq <= covered {
			// Already folded into the snapshot image.
			continue
		}
		if rec.Seq > rep.LastSeq {
			rep.LastSeq = rec.Seq
		}
		apply(jobs, rec, rep)
	}
	return seg, clean, nil
}

// apply merges one record onto the job table.
func apply(jobs map[string]*JobImage, rec Record, rep *Replay) {
	img := jobs[rec.Job.ID]
	if img == nil {
		if rec.Type != RecSubmit {
			// An update for a job the snapshot compacted away and whose
			// submit record was pruned: nothing to merge onto.
			return
		}
		img = &JobImage{ID: rec.Job.ID}
		jobs[rec.Job.ID] = img
	}
	u := rec.Job
	switch rec.Type {
	case RecSubmit:
		*img = u
		var seq uint64
		if _, err := fmt.Sscanf(u.ID, "job-%d", &seq); err == nil && seq > rep.JobSeq {
			rep.JobSeq = seq
		}
	case RecStart, RecLease, RecRetry, RecFinish:
		img.State = u.State
		img.Attempts = u.Attempts
		img.NotBefore = u.NotBefore
		img.LeaseWorker = u.LeaseWorker
		img.LeaseExpiry = u.LeaseExpiry
		img.Error = u.Error
		if !u.FinishedAt.IsZero() {
			img.FinishedAt = u.FinishedAt
		}
		if len(u.Result) > 0 {
			img.Result = u.Result
		}
	}
}

// Append stamps rec with the next sequence number (and the current time
// when unset) and writes it to the active segment.
func (l *Log) Append(rec Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	l.seq++
	rec.Seq = l.seq
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		l.seq--
		return 0, fmt.Errorf("wal: encoding record: %w", err)
	}
	line = append(line, '\n')

	if l.active != nil && l.tailSize()+int64(len(line)) > l.opts.MaxSegmentBytes && l.tailSize() > 0 {
		if err := l.sealLocked(); err != nil {
			return 0, err
		}
	}
	if l.active == nil {
		if err := l.openSegmentLocked(); err != nil {
			return 0, err
		}
	}
	if _, err := l.active.Write(line); err != nil {
		return 0, fmt.Errorf("wal: appending to %s: %w", l.segments[len(l.segments)-1].path, err)
	}
	tail := &l.segments[len(l.segments)-1]
	tail.size += int64(len(line))
	tail.lastSeq = rec.Seq
	l.appends++
	if (l.opts.SyncSubmits && rec.Type == RecSubmit) ||
		(l.opts.SyncEvery > 0 && l.appends >= l.opts.SyncEvery) {
		l.appends = 0
		_ = l.active.Sync()
	}
	return rec.Seq, nil
}

func (l *Log) tailSize() int64 {
	if len(l.segments) == 0 {
		return 0
	}
	return l.segments[len(l.segments)-1].size
}

// openSegmentLocked starts a fresh segment after the newest existing one.
func (l *Log) openSegmentLocked() error {
	next := 1
	if n := len(l.segments); n > 0 {
		next = l.segments[n-1].index + 1
	}
	path := filepath.Join(l.opts.Dir, fmt.Sprintf("wal-%08d.jsonl", next))
	// O_EXCL: an existing file would mean two logs share the directory.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", path, err)
	}
	l.active = f
	l.segments = append(l.segments, segment{index: next, path: path})
	return nil
}

// sealLocked fsyncs and closes the active segment.
func (l *Log) sealLocked() error {
	if l.active == nil {
		return nil
	}
	_ = l.active.Sync()
	err := l.active.Close()
	l.active = nil
	l.appends = 0
	if err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	return nil
}

// Snapshot atomically writes the full job-table image at the current WAL
// position and prunes every segment whose records are fully covered by it.
// The caller passes the authoritative in-memory state (the queue's), so a
// replay of snapshot+tail reconstructs exactly what the queue held.
func (l *Log) Snapshot(jobSeq uint64, jobs []JobImage) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	// Seal the active segment first: the snapshot covers every record
	// appended so far, and covered segments must be immutable to prune.
	if err := l.sealLocked(); err != nil {
		return err
	}
	snap := snapshotFile{
		WALSeq:  l.seq,
		JobSeq:  jobSeq,
		TakenAt: time.Now().UTC(),
		Jobs:    jobs,
	}
	// Compact encoding: MarshalIndent would re-indent the embedded raw
	// payload/result bytes, so a snapshot round-trip would not be
	// byte-identical to pure journal replay.
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("wal: encoding snapshot: %w", err)
	}
	path := filepath.Join(l.opts.Dir, "snapshot.json")
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	_ = f.Sync()
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	// Every sealed segment's records are ≤ l.seq and therefore covered.
	var keep []segment
	for _, seg := range l.segments {
		if seg.lastSeq <= snap.WALSeq {
			_ = os.Remove(seg.path)
			continue
		}
		keep = append(keep, seg)
	}
	l.segments = keep
	return nil
}

// Seq reports the last assigned WAL sequence number.
func (l *Log) Seq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Segments reports how many WAL segment files are currently on disk.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// Close fsyncs and closes the active segment. Appends are rejected
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.sealLocked()
}
