package wal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// testRecords is a small job history: job-1 runs to done, job-2 fails an
// attempt and requeues, job-3 is submitted late. Split into two halves so
// tests can snapshot in between.
func testRecords() (half1, half2 []Record) {
	sub := func(id, kind string) Record {
		return Record{Type: RecSubmit, Job: JobImage{
			ID: id, Kind: kind, State: "queued", MaxAttempts: 3,
			Payload:     json.RawMessage(`{"kind":"` + kind + `"}`),
			SubmittedAt: time.Unix(1700000000, 0).UTC(),
		}}
	}
	half1 = []Record{
		sub("job-000001", "sleep"),
		{Type: RecStart, Job: JobImage{ID: "job-000001", State: "running", Attempts: 1}},
		sub("job-000002", "attack"),
		{Type: RecLease, Job: JobImage{ID: "job-000002", State: "running", Attempts: 1,
			LeaseWorker: "w1", LeaseExpiry: time.Unix(1700000100, 0).UTC()}},
		{Type: RecFinish, Job: JobImage{ID: "job-000001", State: "done", Attempts: 1,
			Result: json.RawMessage(`{"ok":true}`), FinishedAt: time.Unix(1700000050, 0).UTC()}},
	}
	half2 = []Record{
		{Type: RecRetry, Job: JobImage{ID: "job-000002", State: "queued", Attempts: 1,
			Error: "lease expired (worker w1)", NotBefore: time.Unix(1700000200, 0).UTC()}},
		sub("job-000003", "diagnose"),
	}
	return half1, half2
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func openLog(t *testing.T, dir string, opts Options) (*Log, *Replay) {
	t.Helper()
	opts.Dir = dir
	l, rep, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, rep
}

// TestSnapshotReplayEquivalence replays the same record stream two ways —
// straight through, and snapshotted halfway with the tail replayed on top —
// and requires the identical merged job table.
func TestSnapshotReplayEquivalence(t *testing.T) {
	half1, half2 := testRecords()

	plainDir := t.TempDir()
	plain, _ := openLog(t, plainDir, Options{})
	appendAll(t, plain, half1)
	appendAll(t, plain, half2)
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
	_, plainRep := openLog(t, plainDir, Options{})

	snapDir := t.TempDir()
	snapLog, _ := openLog(t, snapDir, Options{})
	appendAll(t, snapLog, half1)
	if err := snapLog.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the coordinator restarting between append and snapshot: the
	// reopened log's replayed state is what gets snapshotted.
	snapLog2, mid := openLog(t, snapDir, Options{})
	if mid.SnapshotUsed {
		t.Fatal("no snapshot written yet, but replay claims one was used")
	}
	if err := snapLog2.Snapshot(mid.JobSeq, mid.Jobs); err != nil {
		t.Fatal(err)
	}
	if got := snapLog2.Segments(); got != 0 {
		t.Fatalf("segments after covering snapshot = %d, want 0", got)
	}
	appendAll(t, snapLog2, half2)
	if err := snapLog2.Close(); err != nil {
		t.Fatal(err)
	}
	_, snapRep := openLog(t, snapDir, Options{})

	if !snapRep.SnapshotUsed {
		t.Fatal("snapshot.json was not used on replay")
	}
	if plainRep.JobSeq != snapRep.JobSeq {
		t.Fatalf("JobSeq: plain %d, snapshotted %d", plainRep.JobSeq, snapRep.JobSeq)
	}
	if !reflect.DeepEqual(plainRep.Jobs, snapRep.Jobs) {
		t.Fatalf("replayed job tables differ:\nplain: %+v\nsnap:  %+v", plainRep.Jobs, snapRep.Jobs)
	}
	if plainRep.JobSeq != 3 || len(plainRep.Jobs) != 3 {
		t.Fatalf("JobSeq %d / %d jobs, want 3 / 3", plainRep.JobSeq, len(plainRep.Jobs))
	}
	byID := map[string]JobImage{}
	for _, img := range plainRep.Jobs {
		byID[img.ID] = img
	}
	if img := byID["job-000001"]; img.State != "done" || string(img.Result) != `{"ok":true}` {
		t.Fatalf("job-000001 = %+v, want done with result", img)
	}
	if img := byID["job-000002"]; img.State != "queued" || img.Attempts != 1 || img.Error == "" {
		t.Fatalf("job-000002 = %+v, want queued retry with error", img)
	}
	if img := byID["job-000003"]; img.State != "queued" || img.Kind != "diagnose" {
		t.Fatalf("job-000003 = %+v, want queued diagnose", img)
	}
}

// TestTornTailSkippedAndSealed simulates the writer dying mid-line: the
// torn bytes are skipped (counted, not fatal), every complete record
// survives, and the next append opens a fresh segment so the torn tail can
// never corrupt a later record boundary.
func TestTornTailSkippedAndSealed(t *testing.T) {
	dir := t.TempDir()
	half1, _ := testRecords()
	l, _ := openLog(t, dir, Options{})
	appendAll(t, l, half1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, "wal-00000001.jsonl")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"type":"submit","job":{"id":"job-9`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rep := openLog(t, dir, Options{})
	if rep.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1 torn line", rep.Skipped)
	}
	if len(rep.Jobs) != 2 || rep.LastSeq != int64(len(half1)) {
		t.Fatalf("replay lost records: %d jobs, last seq %d", len(rep.Jobs), rep.LastSeq)
	}
	if _, err := l2.Append(Record{Type: RecSubmit, Job: JobImage{ID: "job-000004", State: "queued"}}); err != nil {
		t.Fatal(err)
	}
	if got := l2.Segments(); got != 2 {
		t.Fatalf("segments after torn-tail append = %d, want 2 (sealed + fresh)", got)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	_, rep2 := openLog(t, dir, Options{})
	if rep2.Skipped != 1 || len(rep2.Jobs) != 3 {
		t.Fatalf("second replay: skipped %d, jobs %d (want 1, 3)", rep2.Skipped, len(rep2.Jobs))
	}
}

// TestSegmentRotation bounds segment files by size and prunes them all on
// snapshot.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{MaxSegmentBytes: 256})
	var last JobImage
	for i := 0; i < 20; i++ {
		last = JobImage{ID: "job-000001", State: "running", Attempts: i}
		if _, err := l.Append(Record{Type: RecStart, Job: last}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Segments(); got < 2 {
		t.Fatalf("segments = %d, want rotation past 1", got)
	}
	if err := l.Snapshot(1, []JobImage{last}); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got != 0 {
		t.Fatalf("segments after snapshot = %d, want 0", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := openLog(t, dir, Options{MaxSegmentBytes: 256})
	if len(rep.Jobs) != 1 || rep.Jobs[0].Attempts != 19 {
		t.Fatalf("replay = %+v, want the final attempt-19 image", rep.Jobs)
	}
	if rep.LastSeq != 20 {
		t.Fatalf("LastSeq = %d, want 20", rep.LastSeq)
	}
}

// TestUpdateForPrunedJobIsIgnored covers the compaction edge: a delta for
// a job whose submit record was pruned (the job finished and a snapshot
// that no longer lists it took effect) must not resurrect a ghost image.
func TestUpdateForPrunedJobIsIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	// Deltas for a job never submitted in this WAL's lifetime.
	if _, err := l.Append(Record{Type: RecFinish, Job: JobImage{ID: "job-000042", State: "done"}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := openLog(t, dir, Options{})
	if len(rep.Jobs) != 0 {
		t.Fatalf("replay resurrected a pruned job: %+v", rep.Jobs)
	}
}
