package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"reveal/internal/obs"
)

// tracedFixture installs a recorder with tracing and a journal, builds a
// queue+pool whose metrics bind to it, and restores the previous global
// recorder on cleanup (the queue's metrics bind at NewQueue, mirroring the
// daemon's install-recorder-first startup order).
func tracedFixture(t *testing.T, runner Runner) (*obs.Recorder, *Queue, *Pool) {
	t.Helper()
	rec := obs.New(obs.Options{TraceCapacity: 1024, TraceRing: true, EventCapacity: 64})
	prev := obs.Global()
	obs.SetGlobal(rec)
	t.Cleanup(func() { obs.SetGlobal(prev) })
	q := NewQueue(Options{MaxAttempts: 2, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	p := NewPool(q, 1, runner)
	p.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = p.Shutdown(ctx)
	})
	return rec, q, p
}

func waitTerminal(t *testing.T, q *Queue, id string) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTraceAndTenantPropagation submits a traced, tenant-tagged job and
// follows the identity across the queue: the worker's context, the status
// snapshot (with queue-wait/run durations), the per-kind and per-tenant
// metrics, the service journal, and the flow events must all carry it.
func TestTraceAndTenantPropagation(t *testing.T) {
	const traceID = "jobs-trace-0001"
	seenTrace := make(chan string, 1)
	rec, q, _ := tracedFixture(t, func(ctx context.Context, job *Job) (any, error) {
		seenTrace <- obs.TraceIDFrom(ctx)
		time.Sleep(5 * time.Millisecond)
		return "ok", nil
	})

	st, err := q.Submit(Spec{Kind: "sleep", TraceID: traceID, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != traceID || st.Tenant != "acme" {
		t.Fatalf("submitted snapshot lost identity: %+v", st)
	}
	done := waitTerminal(t, q, st.ID)
	if done.State != StateDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	if done.TraceID != traceID || done.Tenant != "acme" {
		t.Fatalf("terminal snapshot lost identity: %+v", done)
	}
	if done.QueueWaitSeconds <= 0 || done.RunSeconds <= 0 {
		t.Fatalf("durations not populated: wait=%g run=%g", done.QueueWaitSeconds, done.RunSeconds)
	}
	if got := <-seenTrace; got != traceID {
		t.Fatalf("worker context carried trace %q, want %q", got, traceID)
	}

	// Per-kind aggregates and histograms.
	kinds := q.StatsByKind()
	if len(kinds) != 1 || kinds[0].Kind != "sleep" || kinds[0].Submitted != 1 || kinds[0].Done != 1 {
		t.Fatalf("StatsByKind = %+v", kinds)
	}
	snap := rec.Registry().Snapshot()
	if got := snap.Histograms[obs.LabelKey(MetricQueueWait, "kind", "sleep")].Count; got != 1 {
		t.Errorf("queue-wait observations = %d, want 1", got)
	}
	if got := snap.Histograms[obs.LabelKey(MetricAttemptDuration, "kind", "sleep")].Count; got != 1 {
		t.Errorf("attempt-duration observations = %d, want 1", got)
	}
	if got := snap.Counters[obs.LabelKey(MetricTenantJobs, "tenant", "acme")]; got != 1 {
		t.Errorf("tenant counter = %d, want 1", got)
	}

	// Journal: the submitted→claimed→finished lifecycle, all stamped.
	events, _ := rec.Events().Since(0, 100)
	want := map[string]bool{obs.EventJobSubmitted: false, obs.EventJobClaimed: false, obs.EventJobFinished: false}
	for _, ev := range events {
		if ev.JobID != st.ID {
			continue
		}
		if ev.TraceID != traceID || ev.Tenant != "acme" || ev.Kind != "sleep" {
			t.Fatalf("journal event lost identity: %+v", ev)
		}
		if _, ok := want[ev.Type]; ok {
			want[ev.Type] = true
		}
	}
	for typ, seen := range want {
		if !seen {
			t.Errorf("journal missing %s for %s", typ, st.ID)
		}
	}

	// Flow events: the attempt step and the finish terminator bound to the ID.
	phases := map[string]bool{}
	for _, ev := range rec.TraceEventsFor(traceID) {
		phases[ev.Phase] = true
	}
	if !phases[obs.FlowStep] || !phases[obs.FlowEnd] {
		t.Fatalf("flow events incomplete for %s: phases %v", traceID, phases)
	}
}

// TestRetryKeepsTraceAndCounts fails the first attempt: the retry must be
// journaled and counted per kind, the second attempt must still see the
// trace, and both attempts must land in the duration histogram.
func TestRetryKeepsTraceAndCounts(t *testing.T) {
	const traceID = "jobs-trace-retry"
	var calls int
	traces := make(chan string, 2)
	rec, q, _ := tracedFixture(t, func(ctx context.Context, job *Job) (any, error) {
		traces <- obs.TraceIDFrom(ctx)
		calls++
		if calls == 1 {
			return nil, errors.New("induced")
		}
		return "ok", nil
	})

	st, err := q.Submit(Spec{Kind: "flaky", TraceID: traceID})
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, q, st.ID)
	if done.State != StateDone || done.Attempts != 2 {
		t.Fatalf("job = %s after %d attempts (%s), want done after 2", done.State, done.Attempts, done.Error)
	}
	for i := 0; i < 2; i++ {
		if got := <-traces; got != traceID {
			t.Fatalf("attempt %d saw trace %q", i+1, got)
		}
	}
	kinds := q.StatsByKind()
	if len(kinds) != 1 || kinds[0].Retried != 1 || kinds[0].Done != 1 {
		t.Fatalf("StatsByKind after retry = %+v", kinds)
	}
	snap := rec.Registry().Snapshot()
	if got := snap.Counters[obs.LabelKey(MetricJobsTotal, "state", "retried")]; got != 1 {
		t.Errorf("retried counter = %d, want 1", got)
	}
	if got := snap.Histograms[obs.LabelKey(MetricAttemptDuration, "kind", "flaky")].Count; got != 2 {
		t.Errorf("attempt-duration observations = %d, want 2 (both attempts)", got)
	}
	var sawRetry bool
	events, _ := rec.Events().Since(0, 100)
	for _, ev := range events {
		if ev.Type == obs.EventJobRetried && ev.JobID == st.ID && ev.TraceID == traceID {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Error("journal missing the job_retried event")
	}
}
