package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastOptions keeps retry latencies test-friendly.
func fastOptions() Options {
	return Options{
		MaxAttempts: 3,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		JitterSeed:  7,
	}
}

// startPool wires a queue and pool around the given runner and registers
// cleanup.
func startPool(t *testing.T, workers int, opts Options, runner Runner) (*Queue, *Pool) {
	t.Helper()
	q := NewQueue(opts)
	p := NewPool(q, workers, runner)
	p.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = p.Shutdown(ctx)
	})
	return q, p
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, q *Queue, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State == want {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := q.Get(id)
	t.Fatalf("job %s stuck in %s (want %s): %+v", id, st.State, want, st)
	return Status{}
}

func TestJobSucceedsFirstAttempt(t *testing.T) {
	q, _ := startPool(t, 1, fastOptions(), func(_ context.Context, j *Job) (any, error) {
		return fmt.Sprintf("ok:%s", j.ID), nil
	})
	st, err := q.Submit(Spec{Kind: "t"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, q, st.ID, StateDone)
	if done.Result != "ok:"+st.ID {
		t.Fatalf("result = %v", done.Result)
	}
	if done.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", done.Attempts)
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", done)
	}
}

// TestRetryBackoffOrdering drives a job that fails twice and succeeds on
// the third attempt, checking the attempt count, the recorded timestamps of
// each attempt, and that the inter-attempt gaps respect the jittered
// exponential envelope (base·2^(k−1) scaled into [0.5, 1.5)).
func TestRetryBackoffOrdering(t *testing.T) {
	var mu sync.Mutex
	var starts []time.Time
	q, _ := startPool(t, 1, fastOptions(), func(_ context.Context, j *Job) (any, error) {
		mu.Lock()
		starts = append(starts, time.Now())
		n := len(starts)
		mu.Unlock()
		if n < 3 {
			return nil, fmt.Errorf("transient %d", n)
		}
		return "recovered", nil
	})
	st, err := q.Submit(Spec{Kind: "flaky"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, q, st.ID, StateDone)
	if done.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", done.Attempts)
	}
	if done.Result != "recovered" {
		t.Fatalf("result = %v", done.Result)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(starts) != 3 {
		t.Fatalf("runner invoked %d times, want 3", len(starts))
	}
	opts := fastOptions()
	for k := 1; k < 3; k++ {
		gap := starts[k].Sub(starts[k-1])
		envelope := opts.BackoffBase << (k - 1)
		minGap := envelope / 2
		if gap < minGap {
			t.Errorf("attempt %d started %v after previous, below the %v backoff floor", k+1, gap, minGap)
		}
		// Generous ceiling: 1.5x envelope + scheduling slack.
		if gap > 3*envelope/2+500*time.Millisecond {
			t.Errorf("attempt %d started %v after previous, above the %v ceiling", k+1, gap, 3*envelope/2)
		}
	}
}

func TestJobFailsAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int32
	q, _ := startPool(t, 1, fastOptions(), func(_ context.Context, _ *Job) (any, error) {
		calls.Add(1)
		return nil, errors.New("permanent")
	})
	st, err := q.Submit(Spec{Kind: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, q, st.ID, StateFailed)
	if failed.Attempts != 3 || failed.Error != "permanent" {
		t.Fatalf("failed = %+v", failed)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("runner invoked %d times, want 3", got)
	}
}

// TestDeadlineExpiryWhileRunning sets a deadline shorter than the runner's
// work; the attempt's context must be canceled and the job must fail
// terminally (no retry — the deadline covers all attempts).
func TestDeadlineExpiryWhileRunning(t *testing.T) {
	var sawCancel atomic.Bool
	q, _ := startPool(t, 1, fastOptions(), func(ctx context.Context, _ *Job) (any, error) {
		select {
		case <-ctx.Done():
			sawCancel.Store(true)
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return "too late", nil
		}
	})
	st, err := q.Submit(Spec{Kind: "slow", Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, q, st.ID, StateFailed)
	if !sawCancel.Load() {
		t.Fatal("runner context was not canceled at the deadline")
	}
	if failed.Attempts != 1 {
		t.Fatalf("deadline-failed job retried: attempts = %d", failed.Attempts)
	}
}

// TestDeadlineExpiryWhileQueued submits a short-deadline job behind a
// long-running one on a single worker: it must fail without ever running.
func TestDeadlineExpiryWhileQueued(t *testing.T) {
	block := make(chan struct{})
	var ran sync.Map
	q, _ := startPool(t, 1, fastOptions(), func(ctx context.Context, j *Job) (any, error) {
		ran.Store(j.ID, true)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return "done", nil
	})
	first, err := q.Submit(Spec{Kind: "blocker"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, first.ID, StateRunning)
	second, err := q.Submit(Spec{Kind: "starved", Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, q, second.ID, StateFailed)
	if failed.Attempts != 0 {
		t.Fatalf("queued-expired job ran: attempts = %d", failed.Attempts)
	}
	if _, ok := ran.Load(second.ID); ok {
		t.Fatal("expired job reached the runner")
	}
	close(block)
	waitState(t, q, first.ID, StateDone)
}

// TestCancelRunning cancels a job mid-run: the runner's context fires and
// the job fails as canceled without retrying.
func TestCancelRunning(t *testing.T) {
	started := make(chan struct{})
	q, _ := startPool(t, 1, fastOptions(), func(ctx context.Context, _ *Job) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	st, err := q.Submit(Spec{Kind: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := q.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, q, st.ID, StateFailed)
	if failed.Error != "canceled" {
		t.Fatalf("error = %q, want canceled", failed.Error)
	}
	if failed.Attempts != 1 {
		t.Fatalf("canceled job retried: attempts = %d", failed.Attempts)
	}
}

// TestCancelQueued cancels a job before any worker claims it.
func TestCancelQueued(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	q, _ := startPool(t, 1, fastOptions(), func(ctx context.Context, _ *Job) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return "done", nil
	})
	first, _ := q.Submit(Spec{Kind: "blocker"})
	waitState(t, q, first.ID, StateRunning)
	second, err := q.Submit(Spec{Kind: "queued"})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Cancel(second.ID); err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, q, second.ID, StateFailed)
	if failed.Attempts != 0 || failed.Error != "canceled" {
		t.Fatalf("canceled queued job = %+v", failed)
	}
}

// TestGracefulDrain verifies Shutdown lets the running job finish and
// rejects new submissions.
func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	q := NewQueue(fastOptions())
	p := NewPool(q, 1, func(ctx context.Context, _ *Job) (any, error) {
		select {
		case <-release:
			return "drained", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	p.Start()
	st, err := q.Submit(Spec{Kind: "inflight"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, st.ID, StateRunning)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- p.Shutdown(ctx)
	}()
	// Submissions must be rejected once draining.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := q.Submit(Spec{Kind: "late"}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue kept accepting submissions during drain")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain returned %v, want nil", err)
	}
	done, _ := q.Get(st.ID)
	if done.State != StateDone || done.Result != "drained" {
		t.Fatalf("in-flight job after drain = %+v", done)
	}
}

// TestDrainTimeoutCancelsRunning verifies the hard stop: when the drain
// context expires, running jobs are canceled and Shutdown returns an error.
func TestDrainTimeoutCancelsRunning(t *testing.T) {
	var sawCancel atomic.Bool
	q := NewQueue(fastOptions())
	p := NewPool(q, 1, func(ctx context.Context, _ *Job) (any, error) {
		<-ctx.Done()
		sawCancel.Store(true)
		return nil, ctx.Err()
	})
	p.Start()
	st, err := q.Submit(Spec{Kind: "stuck", MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, st.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil despite a stuck job")
	}
	if !sawCancel.Load() {
		t.Fatal("stuck job's context was not canceled on hard stop")
	}
	failed, _ := q.Get(st.ID)
	if failed.State != StateFailed {
		t.Fatalf("stuck job state = %s, want failed", failed.State)
	}
}

// TestFIFOOrdering checks single-worker execution order matches submission
// order.
func TestFIFOOrdering(t *testing.T) {
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	q, _ := startPool(t, 1, fastOptions(), func(_ context.Context, j *Job) (any, error) {
		<-gate
		mu.Lock()
		order = append(order, j.ID)
		mu.Unlock()
		return nil, nil
	})
	var ids []string
	for i := 0; i < 5; i++ {
		st, err := q.Submit(Spec{Kind: "seq"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	close(gate)
	for _, id := range ids {
		waitState(t, q, id, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, id := range ids {
		if order[i] != id {
			t.Fatalf("execution order %v, want %v", order, ids)
		}
	}
}

// TestConcurrentWorkers runs many jobs across several workers under -race.
func TestConcurrentWorkers(t *testing.T) {
	var done atomic.Int32
	q, _ := startPool(t, 4, fastOptions(), func(_ context.Context, _ *Job) (any, error) {
		done.Add(1)
		return nil, nil
	})
	const n = 40
	var ids []string
	for i := 0; i < n; i++ {
		st, err := q.Submit(Spec{Kind: "many"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitState(t, q, id, StateDone)
	}
	if got := done.Load(); got != n {
		t.Fatalf("ran %d jobs, want %d", got, n)
	}
	queued, running := q.Depth()
	if queued != 0 || running != 0 {
		t.Fatalf("depth after completion = (%d, %d)", queued, running)
	}
}

// TestQueueCapacity checks the submission bound counts queued and running
// jobs.
func TestQueueCapacity(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	opts := fastOptions()
	opts.Capacity = 2
	q, _ := startPool(t, 1, opts, func(ctx context.Context, _ *Job) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	})
	first, _ := q.Submit(Spec{Kind: "a"})
	waitState(t, q, first.ID, StateRunning)
	if _, err := q.Submit(Spec{Kind: "b"}); err != nil {
		t.Fatalf("second submit rejected: %v", err)
	}
	if _, err := q.Submit(Spec{Kind: "c"}); err == nil {
		t.Fatal("third submit accepted beyond capacity")
	}
}

// TestRunnerPanicIsAFailedAttempt ensures a panicking runner doesn't kill
// the worker: the attempt is recorded as failed and retried.
func TestRunnerPanicIsAFailedAttempt(t *testing.T) {
	var calls atomic.Int32
	q, _ := startPool(t, 1, fastOptions(), func(_ context.Context, _ *Job) (any, error) {
		if calls.Add(1) == 1 {
			panic("boom")
		}
		return "recovered", nil
	})
	st, err := q.Submit(Spec{Kind: "panicky"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, q, st.ID, StateDone)
	if done.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (panic then success)", done.Attempts)
	}
}
