package jobs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// leaseNow polls Lease until a job is granted (retried jobs sit behind a
// backoff gate) or the deadline passes.
func leaseNow(t *testing.T, q *Queue, worker string, ttl time.Duration) *LeasedJob {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		lj, _, _, err := q.Lease(worker, ttl)
		if err != nil {
			t.Fatal(err)
		}
		if lj != nil {
			return lj
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no job leased before deadline")
	return nil
}

func TestLeaseCompleteSuccess(t *testing.T) {
	q := NewQueue(fastOptions())
	st, err := q.Submit(Spec{Kind: "t", Payload: map[string]any{"n": 1}, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	lj := leaseNow(t, q, "w1", time.Second)
	if lj.ID != st.ID || lj.Token == "" || lj.Attempts != 1 {
		t.Fatalf("lease = %+v", lj)
	}
	if string(lj.Payload) != `{"n":1}` {
		t.Fatalf("payload = %s, want lazily serialized map", lj.Payload)
	}
	if got := q.Leased(); got != 1 {
		t.Fatalf("leased = %d, want 1", got)
	}
	done, err := q.CompleteLease(lj.ID, "w1", lj.Token, "result", "")
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Result != "result" || done.LeaseWorker != "" {
		t.Fatalf("completed = %+v", done)
	}
	if got := q.Leased(); got != 0 {
		t.Fatalf("leased after completion = %d, want 0", got)
	}
}

// TestLeaseExpiryRequeuesAndRejectsStaleCompletion is the dead-worker
// story: w1 leases a job and vanishes; the lease expires, the job requeues
// with its attempt counted, w2 leases it under a fresh token, and w1's
// late completion — and any duplicate — bounces off ErrLeaseLost. Only the
// current lease holder's verdict counts.
func TestLeaseExpiryRequeuesAndRejectsStaleCompletion(t *testing.T) {
	q := NewQueue(fastOptions())
	st, err := q.Submit(Spec{Kind: "t"})
	if err != nil {
		t.Fatal(err)
	}
	lj1 := leaseNow(t, q, "w1", 20*time.Millisecond)
	time.Sleep(30 * time.Millisecond)

	// Any queue observation reaps; the next Lease both requeues and grants.
	lj2 := leaseNow(t, q, "w2", time.Second)
	if lj2.ID != st.ID || lj2.Attempts != 2 {
		t.Fatalf("re-lease = %+v, want attempt 2 of %s", lj2, st.ID)
	}
	if lj2.Token == lj1.Token {
		t.Fatal("lease token did not rotate on re-grant")
	}
	mid, _ := q.Get(st.ID)
	if !strings.Contains(mid.Error, "lease expired (worker w1)") {
		t.Fatalf("requeue error = %q, want the expired lease named", mid.Error)
	}

	if _, err := q.CompleteLease(st.ID, "w1", lj1.Token, "stale", ""); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale completion error = %v, want ErrLeaseLost", err)
	}
	done, err := q.CompleteLease(st.ID, "w2", lj2.Token, "fresh", "")
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Result != "fresh" || done.Attempts != 2 {
		t.Fatalf("final = %+v", done)
	}
	// Duplicate completion of a finished job is idempotently rejected.
	if _, err := q.CompleteLease(st.ID, "w2", lj2.Token, "dup", ""); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("duplicate completion error = %v, want ErrLeaseLost", err)
	}
}

// TestLeaseExpiryOnFinalAttemptFails bounds the dead-worker requeue by the
// attempt budget.
func TestLeaseExpiryOnFinalAttemptFails(t *testing.T) {
	opts := fastOptions()
	opts.MaxAttempts = 1
	q := NewQueue(opts)
	st, err := q.Submit(Spec{Kind: "t"})
	if err != nil {
		t.Fatal(err)
	}
	leaseNow(t, q, "w1", 10*time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	got, _ := q.Get(st.ID) // Get reaps
	if got.State != StateFailed || !strings.Contains(got.Error, "lease expired on final attempt") {
		t.Fatalf("job = %+v, want failed on final attempt", got)
	}
}

// TestDeadlineExpiredWhileLeased: a job whose absolute deadline passes
// while a dead worker holds its lease fails with the holder named, rather
// than requeueing for an attempt that could never meet the deadline.
func TestDeadlineExpiredWhileLeased(t *testing.T) {
	q := NewQueue(fastOptions())
	st, err := q.Submit(Spec{Kind: "t", Timeout: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	leaseNow(t, q, "dead-worker", 10*time.Millisecond)
	time.Sleep(40 * time.Millisecond) // past both the lease and the deadline
	got, _ := q.Get(st.ID)
	if got.State != StateFailed {
		t.Fatalf("state = %s, want failed", got.State)
	}
	if !strings.Contains(got.Error, "deadline exceeded while leased by dead-worker") {
		t.Fatalf("error = %q, want the dead lease holder named", got.Error)
	}
}

func TestRenewLeaseExtendsAndRejectsStrangers(t *testing.T) {
	q := NewQueue(fastOptions())
	if _, err := q.Submit(Spec{Kind: "t"}); err != nil {
		t.Fatal(err)
	}
	lj := leaseNow(t, q, "w1", 50*time.Millisecond)
	exp, err := q.RenewLease(lj.ID, "w1", lj.Token, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.After(lj.LeaseExpiry) {
		t.Fatalf("renewal did not extend: %v -> %v", lj.LeaseExpiry, exp)
	}
	if _, err := q.RenewLease(lj.ID, "w2", lj.Token, time.Second); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("foreign renewal error = %v, want ErrLeaseLost", err)
	}
	if _, err := q.RenewLease(lj.ID, "w1", "lease-bogus", time.Second); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("bad-token renewal error = %v, want ErrLeaseLost", err)
	}
	if _, err := q.RenewLease("job-999999", "w1", lj.Token, time.Second); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown-job renewal error = %v, want ErrUnknownJob", err)
	}
}

// TestCanceledLeaseRenewalFails: cancellation of a leased job reaches the
// worker through its next heartbeat.
func TestCanceledLeaseRenewalFails(t *testing.T) {
	q := NewQueue(fastOptions())
	st, err := q.Submit(Spec{Kind: "t"})
	if err != nil {
		t.Fatal(err)
	}
	lj := leaseNow(t, q, "w1", time.Second)
	if err := q.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := q.RenewLease(lj.ID, "w1", lj.Token, time.Second); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("renewal after cancel = %v, want ErrLeaseLost", err)
	}
	// The worker aborts the attempt; the failure finalizes as canceled
	// instead of retrying.
	got, err := q.CompleteLease(lj.ID, "w1", lj.Token, nil, "attempt aborted")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || got.Error != "canceled" {
		t.Fatalf("canceled completion = %+v, want failed/canceled", got)
	}
}

func TestTenantQuotaRejects(t *testing.T) {
	opts := fastOptions()
	opts.TenantQuota = 2
	q := NewQueue(opts)
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(Spec{Kind: "t", Tenant: "acme"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Submit(Spec{Kind: "t", Tenant: "acme"}); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over-quota submit = %v, want ErrOverQuota", err)
	}
	// Other tenants are unaffected; finishing a job frees quota.
	if _, err := q.Submit(Spec{Kind: "t", Tenant: "other"}); err != nil {
		t.Fatal(err)
	}
	lj := leaseNow(t, q, "w1", time.Second) // oldest: an acme job
	if _, err := q.CompleteLease(lj.ID, "w1", lj.Token, "ok", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Spec{Kind: "t", Tenant: "acme"}); err != nil {
		t.Fatalf("post-completion submit = %v, want accepted", err)
	}
}
