package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
)

// Per-coefficient classification-quality metrics, recorded by RecordCoeff
// alongside the journal entries so aggregates survive even when the bounded
// event buffer drops entries.
const (
	MetricCoeffEvents  = "reveal_coeff_events_total"
	MetricCoeffCorrect = "reveal_coeff_correct_total"
	MetricCoeffMargin  = "reveal_coeff_margin"
	MetricCoeffEntropy = "reveal_coeff_entropy_bits"
	MetricCoeffRank    = "reveal_coeff_rank"
)

// Default event-buffer capacities used by StartRun. A full single-trace
// attack on n=1024 emits 2·1024 coefficient events per encryption, so the
// defaults hold dozens of encryptions before dropping.
const (
	DefaultTraceCapacity = 1 << 14
	DefaultCoeffCapacity = 1 << 16
)

// TraceEvent is one record in the Chrome trace_event JSON format: the
// run-directory trace.json is loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Complete ("X") events on the same pid/tid nest by time
// containment, which renders the span hierarchy.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Scope string         `json:"s,omitempty"`
	ID    string         `json:"id,omitempty"`  // flow/async event binding id
	TS    float64        `json:"ts"`            // microseconds since recorder start
	Dur   float64        `json:"dur,omitempty"` // microseconds, for "X" events
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// CoeffEvent is one per-coefficient classification outcome: the journaled
// evidence behind Table I. Margin is the posterior gap between the top two
// candidate values, EntropyBits the Shannon entropy of the posterior, and
// Rank the 1-based position of the true value in the posterior ordering.
type CoeffEvent struct {
	// TraceID correlates the event with the request that produced it.
	// Empty (and absent from the JSONL encoding) outside the service path,
	// so standalone runs — including the selftest digest — are unchanged.
	TraceID string `json:"trace_id,omitempty"`
	// Poly identifies the attacked polynomial ("e1", "e2").
	Poly string `json:"poly,omitempty"`
	// Index is the coefficient position within the polynomial.
	Index int `json:"index"`
	// True is the ground-truth coefficient value.
	True int `json:"true"`
	// Predicted is the maximum-likelihood value the attack recovered.
	Predicted int `json:"predicted"`
	// Sign is the recovered branch class (−1, 0, +1).
	Sign int `json:"sign"`
	// Correct reports Predicted == True.
	Correct bool `json:"correct"`
	// Margin is P(top1) − P(top2) of the posterior.
	Margin float64 `json:"margin"`
	// EntropyBits is the posterior Shannon entropy in bits.
	EntropyBits float64 `json:"entropy_bits"`
	// Rank is the 1-based rank of the true value in the posterior
	// (1 = classified correctly; len(posterior)+1 = not a candidate).
	Rank int `json:"rank"`
}

// boundedBuffer is a mutex-guarded fixed-capacity event store. Once full,
// new events are counted as dropped instead of growing the buffer, keeping
// long campaigns at bounded memory while the aggregate metrics keep
// counting. In ring mode (used by the long-lived daemon) the oldest events
// are overwritten instead, so recent activity is always retained.
type boundedBuffer[T any] struct {
	mu      sync.Mutex
	events  []T
	cap     int
	ring    bool
	head    int // ring mode: index of the oldest event
	dropped int64
}

func newBoundedBuffer[T any](capacity int) *boundedBuffer[T] {
	if capacity <= 0 {
		return nil
	}
	return &boundedBuffer[T]{cap: capacity}
}

// setRing selects overwrite-oldest semantics. Must be called before the
// first add (New does, right after construction).
func (b *boundedBuffer[T]) setRing(ring bool) {
	if b != nil {
		b.ring = ring
	}
}

func (b *boundedBuffer[T]) add(ev T) {
	if b == nil {
		return
	}
	b.mu.Lock()
	switch {
	case len(b.events) < b.cap:
		b.events = append(b.events, ev)
	case b.ring:
		b.events[b.head] = ev
		b.head = (b.head + 1) % b.cap
		b.dropped++
	default:
		b.dropped++
	}
	b.mu.Unlock()
}

// snapshot copies the buffered events (oldest first) and the drop count.
func (b *boundedBuffer[T]) snapshot() ([]T, int64) {
	if b == nil {
		return nil, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.head == 0 {
		return append([]T(nil), b.events...), b.dropped
	}
	out := make([]T, 0, len(b.events))
	out = append(out, b.events[b.head:]...)
	out = append(out, b.events[:b.head]...)
	return out, b.dropped
}

// TracingEnabled reports whether the recorder buffers span trace events.
func (r *Recorder) TracingEnabled() bool { return r != nil && r.spanEvents != nil }

// CoeffJournalEnabled reports whether the recorder journals per-coefficient
// events.
func (r *Recorder) CoeffJournalEnabled() bool { return r != nil && r.coeffEvents != nil }

// TraceEvents returns a copy of the buffered trace events plus the number
// dropped once the buffer filled.
func (r *Recorder) TraceEvents() ([]TraceEvent, int64) {
	if r == nil {
		return nil, 0
	}
	return r.spanEvents.snapshot()
}

// CoeffEvents returns a copy of the journaled coefficient events plus the
// number dropped once the buffer filled.
func (r *Recorder) CoeffEvents() ([]CoeffEvent, int64) {
	if r == nil {
		return nil, 0
	}
	return r.coeffEvents.snapshot()
}

// Instant records a zero-duration marker in the trace stream (e.g. a
// template-health warning), visible as an instant event in Perfetto.
func (r *Recorder) Instant(name string, args map[string]any) {
	if r == nil || r.spanEvents == nil {
		return
	}
	r.spanEvents.add(TraceEvent{
		Name: name, Cat: "marker", Phase: "i", Scope: "t",
		TS: r.Uptime().Seconds() * 1e6, PID: 1, TID: 1, Args: args,
	})
}

// Flow phases of the Chrome trace_event format: a flow is a sequence of
// s (start) → t (step)* → f (end) events sharing one cat/name/id, rendered
// by Perfetto as arrows across threads and processes. The campaign path
// emits one flow per trace ID tying HTTP accept → queue wait → attempts →
// pipeline stages together.
const (
	FlowStart = "s"
	FlowStep  = "t"
	FlowEnd   = "f"
)

// flowCategory/flowName are the fixed binding of campaign flow events.
const (
	flowCategory = "flow"
	flowName     = "campaign"
)

// FlowEvent records one flow-graph node for the given trace ID. phase is
// FlowStart/FlowStep/FlowEnd, step names the node ("http_accept",
// "queue_wait", "attempt", …), and args carries attributes (job id, state).
// No-op when tracing is disabled or the trace ID is empty.
func (r *Recorder) FlowEvent(traceID, phase, step string, args map[string]any) {
	if r == nil || r.spanEvents == nil || traceID == "" {
		return
	}
	if args == nil {
		args = map[string]any{}
	}
	args["step"] = step
	args["trace_id"] = traceID
	r.spanEvents.add(TraceEvent{
		Name: flowName, Cat: flowCategory, Phase: phase, ID: traceID,
		TS: r.Uptime().Seconds() * 1e6, PID: 1, TID: 1, Args: args,
	})
}

// FlowEvent records a campaign flow node on the global recorder.
func FlowEvent(traceID, phase, step string, args map[string]any) {
	Global().FlowEvent(traceID, phase, step, args)
}

// TraceEventsFor returns the buffered events belonging to one trace: flow
// events bound to the ID plus spans stamped with a matching trace_id arg.
func (r *Recorder) TraceEventsFor(traceID string) []TraceEvent {
	if r == nil || traceID == "" {
		return nil
	}
	events, _ := r.spanEvents.snapshot()
	var out []TraceEvent
	for _, ev := range events {
		if ev.ID == traceID {
			out = append(out, ev)
			continue
		}
		if id, ok := ev.Args["trace_id"].(string); ok && id == traceID {
			out = append(out, ev)
		}
	}
	return out
}

// WriteTraceJSONFor renders one trace's events (flow nodes plus stamped
// spans) as a standalone Chrome trace_event document — the per-job
// trace.json the campaign runner archives next to the job manifest.
func (r *Recorder) WriteTraceJSONFor(w io.Writer, traceID string) error {
	events := r.TraceEventsFor(traceID)
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	all := make([]TraceEvent, 0, len(events)+1)
	all = append(all, TraceEvent{
		Name: "process_name", Phase: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": "reveald"},
	})
	all = append(all, events...)
	doc := chromeTrace{
		TraceEvents:     all,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"trace_id": traceID},
	}
	return json.NewEncoder(w).Encode(doc)
}

// RecordCoeff records one per-coefficient classification outcome: aggregate
// metrics always (when a recorder is installed), the JSONL journal entry
// when the bounded buffer is enabled. Nil-safe no-op.
func (r *Recorder) RecordCoeff(ev CoeffEvent) {
	if r == nil {
		return
	}
	reg := r.registry
	reg.Counter(MetricCoeffEvents).Inc()
	if ev.Correct {
		reg.Counter(MetricCoeffCorrect).Inc()
	}
	reg.Histogram(MetricCoeffMargin).Observe(ev.Margin)
	reg.Histogram(MetricCoeffEntropy).Observe(ev.EntropyBits)
	reg.Histogram(MetricCoeffRank).Observe(float64(ev.Rank))
	r.coeffEvents.add(ev)
}

// RecordCoeff records a per-coefficient event on the global recorder
// (no-op when observability is disabled).
func RecordCoeff(ev CoeffEvent) { Global().RecordCoeff(ev) }

// PosteriorStats derives the CoeffEvent quality fields from a posterior
// over candidate values: the top-two margin, the Shannon entropy in bits,
// and the 1-based rank of trueValue (len(posterior)+1 when the true value
// is not a candidate).
func PosteriorStats(probs map[int]float64, trueValue int) (margin, entropyBits float64, rank int) {
	// Iterate candidates in sorted-key order, not map order: the entropy
	// accumulation is a float sum, and summation order must not depend on
	// Go's randomized map iteration or the journal loses bitwise replay
	// determinism.
	keys := make([]int, 0, len(probs))
	for k := range probs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	top1, top2 := math.Inf(-1), math.Inf(-1)
	pTrue, hasTrue := probs[trueValue]
	rank = 1
	for _, k := range keys {
		p := probs[k]
		if p > top1 {
			top1, top2 = p, top1
		} else if p > top2 {
			top2 = p
		}
		if p > 0 {
			entropyBits -= p * math.Log2(p)
		}
		if hasTrue && p > pTrue {
			rank++
		}
	}
	if !hasTrue {
		rank = len(probs) + 1
	}
	switch {
	case math.IsInf(top1, -1):
		margin = 0
	case math.IsInf(top2, -1):
		margin = top1
	default:
		margin = top1 - top2
	}
	return margin, entropyBits, rank
}

// chromeTrace is the JSON-object form of the Chrome trace format.
type chromeTrace struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// WriteTraceJSON renders the buffered span events as Chrome trace_event
// JSON (the run directory's trace.json), sorted by start timestamp, with a
// process-name metadata record and the drop count in the metadata block.
func (r *Recorder) WriteTraceJSON(w io.Writer) error {
	events, dropped := r.TraceEvents()
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	all := make([]TraceEvent, 0, len(events)+1)
	all = append(all, TraceEvent{
		Name: "process_name", Phase: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": "reveal"},
	})
	all = append(all, events...)
	doc := chromeTrace{TraceEvents: all, DisplayTimeUnit: "ms"}
	if dropped > 0 {
		doc.Metadata = map[string]any{"dropped_events": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteCoeffsJSONL writes the journaled per-coefficient events as JSON
// Lines (the run directory's coeffs.jsonl), one event per line.
func (r *Recorder) WriteCoeffsJSONL(w io.Writer) error {
	events, dropped := r.CoeffEvents()
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	if dropped > 0 {
		// Dropping past capacity is the bounded-memory contract, not a
		// write failure; the aggregate metrics still cover every event.
		r.Logger().Warn("coefficient journal dropped events past capacity",
			"dropped", dropped, "kept", len(events))
	}
	return nil
}
