package obs

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeMetricsWithMountsAPI checks an application handler mounted
// under /api/ coexists with the built-in endpoints — in particular that
// /healthz keeps answering (the regression ServeMetricsWith exists to
// prevent: an API handler registered at "/" would shadow every probe).
func TestServeMetricsWithMountsAPI(t *testing.T) {
	rec := New(Options{})
	api := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		_, _ = io.WriteString(w, r.URL.Path)
	})
	srv, err := ServeMetricsWith(rec, "127.0.0.1:0", api)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/api/v1/anything")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot || string(body) != "/api/v1/anything" {
		t.Fatalf("API mount broken: %d %q", resp.StatusCode, body)
	}
	for _, path := range []string{"/healthz", "/metrics", "/progress"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200 (clobbered by API mount?)", path, resp.StatusCode)
		}
	}
}

// TestShutdownWaitsForInflightRequest starts a /progress request that
// deliberately lingers (?wait=) and then shuts the server down: the drain
// must let the in-flight response complete.
func TestShutdownWaitsForInflightRequest(t *testing.T) {
	rec := New(Options{})
	srv, err := ServeMetricsWith(rec, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	type result struct {
		body string
		err  error
	}
	started := make(chan struct{})
	got := make(chan result, 1)
	go func() {
		close(started)
		resp, err := http.Get(base + "/progress?wait=300ms")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body: string(body), err: err}
	}()
	<-started
	// Give the request time to reach the handler's wait.
	time.Sleep(100 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", r.err)
	}
	if !strings.Contains(r.body, "uptime_seconds") {
		t.Fatalf("in-flight response truncated: %q", r.body)
	}
	// After shutdown the listener must be closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

// TestProgressWaitValidation rejects malformed wait parameters.
func TestProgressWaitValidation(t *testing.T) {
	rec := New(Options{})
	srv, err := ServeMetrics(rec, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/progress?wait=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus wait = %d, want 400", resp.StatusCode)
	}
}
