package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpanEmitsTraceEvents(t *testing.T) {
	rec := New(Options{TraceCapacity: 16})
	parent := rec.StartSpan("attack")
	child := parent.Child("e1")
	child.AddItems(7)
	child.End()
	parent.End()

	events, dropped := rec.TraceEvents()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	byName := map[string]TraceEvent{}
	for _, ev := range events {
		byName[ev.Name] = ev
	}
	ch, ok := byName["attack/e1"]
	if !ok {
		t.Fatalf("child span event missing, have %v", byName)
	}
	if ch.Phase != "X" || ch.PID != 1 || ch.TID != 1 {
		t.Fatalf("child event = %+v", ch)
	}
	if ch.Args["items"] != int64(7) {
		t.Fatalf("child args = %v", ch.Args)
	}
	pa := byName["attack"]
	if pa.TS > ch.TS || pa.TS+pa.Dur < ch.TS+ch.Dur {
		t.Fatalf("parent [%v,%v] does not contain child [%v,%v]",
			pa.TS, pa.TS+pa.Dur, ch.TS, ch.TS+ch.Dur)
	}
}

func TestTraceBufferBounded(t *testing.T) {
	rec := New(Options{TraceCapacity: 4})
	for i := 0; i < 10; i++ {
		rec.StartSpan("segment").End()
	}
	events, dropped := rec.TraceEvents()
	if len(events) != 4 || dropped != 6 {
		t.Fatalf("len=%d dropped=%d, want 4/6", len(events), dropped)
	}
	// The metrics keep counting past the buffer cap.
	if runs := rec.Registry().Counter(stageKey(MetricStageRuns, "segment")).Value(); runs != 10 {
		t.Fatalf("runs counter = %d, want 10", runs)
	}
}

func TestWriteTraceJSONIsChromeFormat(t *testing.T) {
	rec := New(Options{TraceCapacity: 16})
	sp := rec.StartSpan("profile")
	sp.Child("collect").End()
	sp.End()
	rec.Instant("warning", map[string]any{"msg": "ill-conditioned"})

	var buf bytes.Buffer
	if err := rec.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace.json is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// Metadata record + 2 spans + 1 instant.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4:\n%s", len(doc.TraceEvents), buf.String())
	}
	if doc.TraceEvents[0].Phase != "M" || doc.TraceEvents[0].Name != "process_name" {
		t.Fatalf("first event must be process metadata, got %+v", doc.TraceEvents[0])
	}
	for i := 2; i < len(doc.TraceEvents); i++ {
		if doc.TraceEvents[i].TS < doc.TraceEvents[i-1].TS {
			t.Fatalf("events not sorted by ts: %+v", doc.TraceEvents)
		}
	}
}

func TestRecordCoeffJournalAndMetrics(t *testing.T) {
	rec := New(Options{CoeffCapacity: 8})
	SetGlobal(rec)
	defer SetGlobal(nil)

	RecordCoeff(CoeffEvent{
		Poly: "e2", Index: 3, True: -2, Predicted: -2, Sign: -1,
		Correct: true, Margin: 0.9, EntropyBits: 0.4, Rank: 1,
	})
	RecordCoeff(CoeffEvent{
		Poly: "e2", Index: 4, True: 1, Predicted: 2, Sign: 1,
		Correct: false, Margin: 0.1, EntropyBits: 2.1, Rank: 2,
	})

	events, dropped := rec.CoeffEvents()
	if len(events) != 2 || dropped != 0 {
		t.Fatalf("journal len=%d dropped=%d", len(events), dropped)
	}
	if events[0].Poly != "e2" || events[0].Rank != 1 || !events[0].Correct {
		t.Fatalf("first event = %+v", events[0])
	}
	if n := rec.Registry().Counter(MetricCoeffEvents).Value(); n != 2 {
		t.Fatalf("%s = %d, want 2", MetricCoeffEvents, n)
	}
	if n := rec.Registry().Counter(MetricCoeffCorrect).Value(); n != 1 {
		t.Fatalf("%s = %d, want 1", MetricCoeffCorrect, n)
	}
	if h := rec.Registry().Histogram(MetricCoeffRank); h.Count() != 2 || h.Max() != 2 {
		t.Fatalf("rank histogram count=%d max=%v", h.Count(), h.Max())
	}

	var buf bytes.Buffer
	if err := rec.WriteCoeffsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var ev CoeffEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("coeffs.jsonl has %d lines, want 2", lines)
	}
}

func TestPosteriorStats(t *testing.T) {
	probs := map[int]float64{0: 0.7, 1: 0.2, -1: 0.1}
	margin, entropy, rank := PosteriorStats(probs, 0)
	if math.Abs(margin-0.5) > 1e-12 {
		t.Fatalf("margin = %v, want 0.5", margin)
	}
	want := -(0.7*math.Log2(0.7) + 0.2*math.Log2(0.2) + 0.1*math.Log2(0.1))
	if math.Abs(entropy-want) > 1e-12 {
		t.Fatalf("entropy = %v, want %v", entropy, want)
	}
	if rank != 1 {
		t.Fatalf("rank = %d, want 1", rank)
	}
	if _, _, rank = PosteriorStats(probs, 1); rank != 2 {
		t.Fatalf("rank of runner-up = %d, want 2", rank)
	}
	if _, _, rank = PosteriorStats(probs, 9); rank != 4 {
		t.Fatalf("rank of non-candidate = %d, want len+1 = 4", rank)
	}
	if m, e, r := PosteriorStats(nil, 0); m != 0 || e != 0 || r != 1 {
		t.Fatalf("empty posterior stats = %v %v %v", m, e, r)
	}
}

func TestRunFinishWritesEventArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	run, err := StartRun(dir, RunOptions{Tool: "obs_test", Command: "trace", Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	sp := StartSpan("classify")
	sp.AddItems(2)
	sp.End()
	RecordCoeff(CoeffEvent{Poly: "e1", Index: 0, True: 1, Predicted: 1, Correct: true, Rank: 1})
	if err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	traceData, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(traceData) || !strings.Contains(string(traceData), `"classify"`) {
		t.Fatalf("trace.json invalid or missing span:\n%s", traceData)
	}
	coeffData, err := os.ReadFile(filepath.Join(dir, "coeffs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(coeffData), `"poly":"e1"`) {
		t.Fatalf("coeffs.jsonl missing event:\n%s", coeffData)
	}
}

func TestRunDisabledTracing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	run, err := StartRun(dir, RunOptions{
		Tool: "obs_test", Command: "notrace", Quiet: true,
		TraceCapacity: -1, CoeffCapacity: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	StartSpan("classify").End()
	if err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "trace.json")); !os.IsNotExist(err) {
		t.Fatalf("trace.json should not exist: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "coeffs.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("coeffs.jsonl should not exist: %v", err)
	}
}
