package obs

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// Metric names recorded per pipeline stage. The stage label distinguishes
// capture, segment, poi, template, classify, hints, dbdd, profile, …
const (
	MetricStageDuration = "reveal_stage_duration_seconds"
	MetricStageRuns     = "reveal_stage_runs_total"
	MetricStageItems    = "reveal_stage_items_total"
	MetricStageActive   = "reveal_stage_active"
)

func stageKey(metric, stage string) string {
	return fmt.Sprintf("%s{stage=%q}", metric, stage)
}

// Span is one timed execution of a pipeline stage. A nil *Span is valid
// and records nothing — the disabled-observability fast path.
type Span struct {
	rec     *Recorder
	name    string
	traceID string // request identity stamped on the trace event ("" = none)
	start   time.Time
	items   int64
}

// StartSpan opens a span on the global recorder. When observability is
// disabled it returns nil, and every Span method is a nil-safe no-op.
func StartSpan(name string) *Span { return Global().StartSpan(name) }

// StartSpanCtx opens a span on the global recorder carrying the trace
// identity from ctx, so the span's trace event (and its children's, via
// Child) can be correlated with the request that caused it. The disabled
// path stays one atomic load: the context is only consulted once a
// recorder is installed.
func StartSpanCtx(ctx context.Context, name string) *Span {
	rec := Global()
	if rec == nil {
		return nil
	}
	sp := rec.StartSpan(name)
	sp.traceID = TraceIDFrom(ctx)
	return sp
}

// StartSpan opens a span for one stage execution.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.active[name]++
	r.mu.Unlock()
	r.registry.Gauge(stageKey(MetricStageActive, name)).Add(1)
	return &Span{rec: r, name: name, start: time.Now()}
}

// AddItems accumulates the number of items (traces, segments, hints, …)
// the stage processed, feeding the throughput metrics.
func (s *Span) AddItems(n int) {
	if s != nil {
		s.items += int64(n)
	}
}

// Child opens a sub-span named "<parent>/<name>", giving hierarchical
// stage metrics and nested trace events. The child inherits the parent's
// trace identity. A nil receiver (observability disabled) returns a nil
// span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	child := s.rec.StartSpan(s.name + "/" + name)
	child.traceID = s.traceID
	return child
}

// End closes the span, recording wall time, run and item counters, and a
// debug log line. It returns the measured duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	r := s.rec
	reg := r.registry
	reg.Histogram(stageKey(MetricStageDuration, s.name)).Observe(d.Seconds())
	reg.Counter(stageKey(MetricStageRuns, s.name)).Inc()
	if s.items > 0 {
		reg.Counter(stageKey(MetricStageItems, s.name)).Add(s.items)
	}
	reg.Gauge(stageKey(MetricStageActive, s.name)).Add(-1)
	if r.spanEvents != nil {
		var args map[string]any
		if s.items > 0 {
			args = map[string]any{"items": s.items}
		}
		if s.traceID != "" {
			if args == nil {
				args = map[string]any{}
			}
			args["trace_id"] = s.traceID
		}
		r.spanEvents.add(TraceEvent{
			Name: s.name, Cat: "stage", Phase: "X",
			TS:  float64(s.start.Sub(r.start).Nanoseconds()) / 1e3,
			Dur: float64(d.Nanoseconds()) / 1e3,
			PID: 1, TID: 1, Args: args,
		})
	}
	r.mu.Lock()
	r.active[s.name]--
	r.mu.Unlock()
	r.Logger().Debug("stage done", "stage", s.name,
		"duration", d, "items", s.items)
	return d
}

// StageStats is the per-stage aggregate reported in manifests and on the
// /progress endpoint.
type StageStats struct {
	Name           string  `json:"name"`
	Runs           int64   `json:"runs"`
	Items          int64   `json:"items,omitempty"`
	Active         int     `json:"active,omitempty"`
	TotalSeconds   float64 `json:"total_seconds"`
	MinSeconds     float64 `json:"min_seconds"`
	MaxSeconds     float64 `json:"max_seconds"`
	P50Seconds     float64 `json:"p50_seconds"`
	P95Seconds     float64 `json:"p95_seconds"`
	P99Seconds     float64 `json:"p99_seconds"`
	ItemsPerSecond float64 `json:"items_per_second,omitempty"`
}

// StageStats aggregates every stage the recorder has seen, sorted by name.
func (r *Recorder) StageStats() []StageStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.active))
	activeByName := make(map[string]int, len(r.active))
	for name, n := range r.active {
		names = append(names, name)
		activeByName[name] = n
	}
	r.mu.Unlock()
	sort.Strings(names)

	out := make([]StageStats, 0, len(names))
	for _, name := range names {
		h := r.registry.Histogram(stageKey(MetricStageDuration, name))
		snap := h.Snapshot()
		st := StageStats{
			Name:         name,
			Runs:         snap.Count,
			Items:        r.registry.Counter(stageKey(MetricStageItems, name)).Value(),
			Active:       activeByName[name],
			TotalSeconds: snap.Sum,
			MinSeconds:   snap.Min,
			MaxSeconds:   snap.Max,
			P50Seconds:   snap.P50,
			P95Seconds:   snap.P95,
			P99Seconds:   snap.P99,
		}
		if st.TotalSeconds > 0 && st.Items > 0 {
			st.ItemsPerSecond = float64(st.Items) / st.TotalSeconds
		}
		out = append(out, st)
	}
	return out
}
