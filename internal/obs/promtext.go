package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line of a Prometheus text exposition:
// metric name, rendered label suffix (`{k="v",...}` or ""), and value.
type PromSample struct {
	Name   string
	Labels string
	Value  float64
}

// PromMetrics is the parsed form of a /metrics scrape: declared types by
// metric base name plus every sample, keyed by full series key
// (name + label suffix).
type PromMetrics struct {
	Types   map[string]string
	Samples map[string]PromSample
}

// Value returns the sample value for a full series key (e.g.
// `reveal_jobs_total{state="done"}`) and whether the series is present.
func (p *PromMetrics) Value(key string) (float64, bool) {
	if p == nil {
		return 0, false
	}
	s, ok := p.Samples[key]
	return s.Value, ok
}

// HasMetric reports whether any series with the given base name exists.
func (p *PromMetrics) HasMetric(name string) bool {
	if p == nil {
		return false
	}
	if _, ok := p.Types[name]; ok {
		return true
	}
	for _, s := range p.Samples {
		if s.Name == name {
			return true
		}
	}
	return false
}

// ParsePrometheusText parses (and thereby validates) a Prometheus text
// exposition, the format produced by Registry.WritePrometheus. It checks
// the invariants a real scraper depends on — one well-formed `name{labels}
// value` per line, balanced and quote-escaped label sets, parseable values,
// no duplicate series — and returns every sample. Used by the smoke tests
// to assert that a live /metrics scrape is ingestible, not merely non-empty.
func ParsePrometheusText(r io.Reader) (*PromMetrics, error) {
	out := &PromMetrics{
		Types:   map[string]string{},
		Samples: map[string]PromSample{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if prev, dup := out.Types[name]; dup && prev != typ {
					return nil, fmt.Errorf("line %d: metric %s redeclared as %s (was %s)", lineNo, name, typ, prev)
				}
				out.Types[name] = typ
			}
			continue
		}
		sample, key, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, dup := out.Samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		out.Samples[key] = sample
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Samples) == 0 {
		return nil, fmt.Errorf("no samples in exposition")
	}
	return out, nil
}

// parsePromSample splits one sample line into its series key and value.
func parsePromSample(line string) (PromSample, string, error) {
	// The series key ends at the first space outside the label braces.
	inQuote, escaped, brace := false, false, false
	split := -1
	for i := 0; i < len(line); i++ {
		c := line[i]
		if escaped {
			escaped = false
			continue
		}
		switch {
		case inQuote && c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '{':
			if brace {
				return PromSample{}, "", fmt.Errorf("nested '{' in series %q", line)
			}
			brace = true
		case !inQuote && c == '}':
			if !brace {
				return PromSample{}, "", fmt.Errorf("unbalanced '}' in series %q", line)
			}
			brace = false
		case !inQuote && !brace && (c == ' ' || c == '\t'):
			split = i
		}
		if split >= 0 {
			break
		}
	}
	if inQuote || brace {
		return PromSample{}, "", fmt.Errorf("unterminated label set in %q", line)
	}
	if split < 0 {
		return PromSample{}, "", fmt.Errorf("sample line %q has no value", line)
	}
	key := line[:split]
	valStr := strings.TrimSpace(line[split:])
	// Timestamps (a second numeric field) are permitted by the format.
	if fields := strings.Fields(valStr); len(fields) > 0 {
		valStr = fields[0]
	}
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return PromSample{}, "", fmt.Errorf("bad value %q: %v", valStr, err)
	}
	name, labels := baseName(key), labelSuffix(key)
	if name == "" || !validMetricName(name) {
		return PromSample{}, "", fmt.Errorf("bad metric name in %q", key)
	}
	if labels != "" {
		if err := validateLabelSet(labels); err != nil {
			return PromSample{}, "", fmt.Errorf("series %s: %w", key, err)
		}
	}
	return PromSample{Name: name, Labels: labels, Value: val}, key, nil
}

// validMetricName checks the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}

// validateLabelSet checks a rendered `{k="v",...}` suffix: every pair must
// be name="quoted-value" with valid escaping.
func validateLabelSet(s string) error {
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return fmt.Errorf("malformed label set %q", s)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return nil
	}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 {
			return fmt.Errorf("label pair missing '=' in %q", body)
		}
		name := body[:eq]
		if !validMetricName(strings.TrimSuffix(name, ":")) || strings.Contains(name, ":") {
			return fmt.Errorf("bad label name %q", name)
		}
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %s: unquoted value", name)
		}
		// Walk the quoted value honoring backslash escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("label %s: unterminated value", name)
		}
		body = rest[end+1:]
		if body == "" {
			break
		}
		if body[0] != ',' {
			return fmt.Errorf("label %s: trailing garbage %q", name, body)
		}
		body = body[1:]
	}
	return nil
}
