package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const manifestA = `{
  "tool": "revealctl", "command": "attack", "seed": 1,
  "duration_seconds": 10.0,
  "results": {
    "mean_value_accuracy": 0.95,
    "mean_sign_accuracy": 1.0,
    "messages_recovered": 2,
    "bikz_with_hints": 12.2,
    "classifier_path": "profile.rvcl"
  },
  "stages": [
    {"name": "classify", "runs": 4, "total_seconds": 2.0, "items_per_second": 4100}
  ]
}`

func TestLoadRunMetricsManifest(t *testing.T) {
	rm, err := LoadRunMetrics(writeFile(t, "manifest.json", manifestA))
	if err != nil {
		t.Fatal(err)
	}
	if rm.Kind != "manifest" {
		t.Fatalf("kind = %q", rm.Kind)
	}
	for key, want := range map[string]float64{
		"duration_seconds":                10,
		"results.mean_value_accuracy":     0.95,
		"results.messages_recovered":      2,
		"results.bikz_with_hints":         12.2,
		"stage.classify.total_seconds":    2,
		"stage.classify.items_per_second": 4100,
	} {
		if got := rm.Values[key]; got != want {
			t.Errorf("%s = %v, want %v (have %v)", key, got, want, rm.Values)
		}
	}
	if _, ok := rm.Values["results.classifier_path"]; ok {
		t.Error("non-numeric result must be skipped")
	}
}

func TestLoadRunMetricsBench(t *testing.T) {
	rm, err := LoadRunMetrics(writeFile(t, "BENCH_x.json", `{
	  "name": "Table1TemplateAttack", "iterations": 1, "ns_per_op": 5.0e8,
	  "items_per_second": 9000,
	  "metrics": {"value_accuracy_pct": 94.2, "coefficients/op": 6144}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if rm.Kind != "bench" {
		t.Fatalf("kind = %q", rm.Kind)
	}
	if rm.Values["ns_per_op"] != 5e8 || rm.Values["metrics.value_accuracy_pct"] != 94.2 {
		t.Fatalf("values = %v", rm.Values)
	}
}

func TestLoadRunMetricsRejectsJunk(t *testing.T) {
	if _, err := LoadRunMetrics(writeFile(t, "junk.json", `{"hello": "world"}`)); err == nil {
		t.Fatal("junk JSON must be rejected")
	}
	if _, err := LoadRunMetrics(writeFile(t, "bad.json", `not json`)); err == nil {
		t.Fatal("invalid JSON must be rejected")
	}
}

func TestCompareMetricsGatesAccuracyDrop(t *testing.T) {
	a := &RunMetrics{Values: map[string]float64{
		"results.mean_value_accuracy": 0.95,
		"duration_seconds":            10,
	}}
	b := &RunMetrics{Values: map[string]float64{
		"results.mean_value_accuracy": 0.80, // −15.8%: beyond 5% tolerance
		"duration_seconds":            30,   // perf: informational by default
	}}
	deltas, regressed := CompareMetrics(a, b, CompareOptions{})
	if !regressed {
		t.Fatal("accuracy drop beyond tolerance must regress")
	}
	if deltas[0].Name != "results.mean_value_accuracy" || !deltas[0].Regressed {
		t.Fatalf("regression must sort first: %+v", deltas)
	}
	for _, d := range deltas {
		if d.Name == "duration_seconds" && d.Regressed {
			t.Fatal("perf metric must not gate by default")
		}
	}

	// Within tolerance: no regression.
	b.Values["results.mean_value_accuracy"] = 0.93
	if _, regressed := CompareMetrics(a, b, CompareOptions{}); regressed {
		t.Fatal("3% drop within 5% tolerance must pass")
	}

	// Tighter per-metric tolerance flips it back to a regression.
	_, regressed = CompareMetrics(a, b, CompareOptions{
		MetricTolerance: map[string]float64{"results.mean_value_accuracy": 0.01},
	})
	if !regressed {
		t.Fatal("per-metric tolerance override must gate the 3% drop")
	}
}

func TestCompareMetricsGatePerfAndImprovements(t *testing.T) {
	a := &RunMetrics{Values: map[string]float64{"ns_per_op": 1e9}}
	b := &RunMetrics{Values: map[string]float64{"ns_per_op": 2e9}}
	if _, regressed := CompareMetrics(a, b, CompareOptions{}); regressed {
		t.Fatal("perf must be informational without GatePerf")
	}
	if _, regressed := CompareMetrics(a, b, CompareOptions{GatePerf: true}); !regressed {
		t.Fatal("2x slowdown must regress with GatePerf")
	}
	// Improvements never regress, regardless of magnitude.
	if _, regressed := CompareMetrics(b, a, CompareOptions{GatePerf: true}); regressed {
		t.Fatal("speedup must not regress")
	}
}

// TestCompareMetricsPerfTolerance: PerfTolerance loosens only the
// wall-clock metrics; quality metrics keep the default tolerance, and
// per-metric overrides still win over both.
func TestCompareMetricsPerfTolerance(t *testing.T) {
	a := &RunMetrics{Values: map[string]float64{
		"ns_per_op":           1e9,
		"metrics.value-acc-%": 100,
	}}
	b := &RunMetrics{Values: map[string]float64{
		"ns_per_op":           1.2e9, // 20% slower
		"metrics.value-acc-%": 90,    // 10% worse
	}}
	// 20% slowdown fails at the default 5% tolerance...
	if _, regressed := CompareMetrics(a, b, CompareOptions{GatePerf: true}); !regressed {
		t.Fatal("20% slowdown must regress at default tolerance")
	}
	// ...passes with a 30% perf tolerance — but the accuracy drop still fails.
	deltas, regressed := CompareMetrics(a, b, CompareOptions{GatePerf: true, PerfTolerance: 0.3})
	if !regressed {
		t.Fatal("accuracy drop must still regress under a loose perf tolerance")
	}
	for _, d := range deltas {
		if d.Name == "ns_per_op" {
			if d.Regressed {
				t.Fatal("ns_per_op must pass within PerfTolerance")
			}
			if d.Tolerance != 0.3 {
				t.Fatalf("ns_per_op tolerance = %g, want 0.3", d.Tolerance)
			}
		}
		if d.Name == "metrics.value-acc-%" && d.Tolerance != 0.05 {
			t.Fatalf("accuracy tolerance = %g, want the default 0.05", d.Tolerance)
		}
	}
	// A per-metric override beats PerfTolerance.
	_, regressed = CompareMetrics(a, b, CompareOptions{
		GatePerf:        true,
		PerfTolerance:   0.3,
		MetricTolerance: map[string]float64{"ns_per_op": 0.1, "metrics.value-acc-%": 0.5},
	})
	if !regressed {
		t.Fatal("per-metric 10% bound must re-gate the 20% slowdown")
	}
}

// TestCompareMetricsWildcardTolerance: a 'prefix*' override covers every
// matching metric, exact names beat wildcards, and longer prefixes beat
// shorter ones.
func TestCompareMetricsWildcardTolerance(t *testing.T) {
	a := &RunMetrics{Values: map[string]float64{
		"stage.segment.p50_seconds":  0.0002,
		"stage.classify.p50_seconds": 0.020,
		"ns_per_op":                  1e8,
	}}
	b := &RunMetrics{Values: map[string]float64{
		"stage.segment.p50_seconds":  0.0004, // +100%: timer quantization
		"stage.classify.p50_seconds": 0.024,  // +20%
		"ns_per_op":                  1.1e8,  // +10%
	}}
	opts := CompareOptions{
		GatePerf:      true,
		PerfTolerance: 0.15,
		MetricTolerance: map[string]float64{
			"stage.*":                    2,
			"stage.classify.p50_seconds": 0.1,
		},
	}
	deltas, regressed := CompareMetrics(a, b, opts)
	byName := map[string]MetricDelta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["stage.segment.p50_seconds"].Regressed {
		t.Fatal("wildcard tolerance must absorb the quantized stage metric")
	}
	if !byName["stage.classify.p50_seconds"].Regressed {
		t.Fatal("exact override must beat the wildcard and gate the 20% rise")
	}
	if byName["ns_per_op"].Regressed || byName["ns_per_op"].Tolerance != 0.15 {
		t.Fatalf("non-matching metric must keep PerfTolerance: %+v", byName["ns_per_op"])
	}
	if !regressed {
		t.Fatal("comparison must regress via the exact-override metric")
	}
	// Longest wildcard prefix wins.
	tol, ok := lookupTolerance(map[string]float64{"stage.*": 2, "stage.segment.*": 3}, "stage.segment.items")
	if !ok || tol != 3 {
		t.Fatalf("longest prefix must win: got %g, %v", tol, ok)
	}
	if _, ok := lookupTolerance(map[string]float64{"stage.*": 2}, "ns_per_op"); ok {
		t.Fatal("non-matching name must not resolve")
	}
}

func TestMetricDirectionBenchAccuracy(t *testing.T) {
	// The benchmark snapshots name their quality metrics "value-acc-%";
	// they must be gated like the manifests' "*_accuracy" results.
	for name, want := range map[string]string{
		"metrics.value-acc-%":         "higher_better",
		"metrics.sign-acc-%":          "higher_better",
		"results.mean_value_accuracy": "higher_better",
		"ns_per_op":                   "lower_better",
		"stage.attack.items":          "informational",
		// Streaming benchmark metrics: nanosecond latencies gate downward,
		// throughput rates gate upward — both as perf (machine-dependent).
		"metrics.time_to_first_hint_ns": "lower_better",
		"metrics.traces_per_second":     "higher_better",
		"metrics.mb_ingest_per_second":  "higher_better",
	} {
		if dir, _ := metricDirection(name); dir != want {
			t.Errorf("metricDirection(%q) = %s, want %s", name, dir, want)
		}
	}
	for _, name := range []string{"metrics.time_to_first_hint_ns", "metrics.traces_per_second"} {
		if _, perf := metricDirection(name); !perf {
			t.Errorf("metricDirection(%q) must be perf-gated", name)
		}
	}
	a := &RunMetrics{Values: map[string]float64{"metrics.value-acc-%": 68.2}}
	b := &RunMetrics{Values: map[string]float64{"metrics.value-acc-%": 50.0}}
	if _, regressed := CompareMetrics(a, b, CompareOptions{}); !regressed {
		t.Fatal("bench accuracy drop beyond tolerance must regress")
	}
}

func TestCompareMetricsMissingGatedMetric(t *testing.T) {
	a := &RunMetrics{Values: map[string]float64{"results.mean_value_accuracy": 0.95}}
	b := &RunMetrics{Values: map[string]float64{"results.other": 1}}
	deltas, regressed := CompareMetrics(a, b, CompareOptions{})
	if !regressed {
		t.Fatal("a gated metric missing from the new run must regress")
	}
	if deltas[0].MissingIn != "new" {
		t.Fatalf("deltas = %+v", deltas)
	}
}

func TestFormatDeltas(t *testing.T) {
	a := &RunMetrics{Values: map[string]float64{"results.sign_accuracy": 1.0, "results.x": 3}}
	b := &RunMetrics{Values: map[string]float64{"results.sign_accuracy": 0.5, "results.x": 3}}
	deltas, _ := CompareMetrics(a, b, CompareOptions{})
	out := FormatDeltas(deltas)
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "results.sign_accuracy") {
		t.Fatalf("format output:\n%s", out)
	}
	if strings.Contains(out, "results.x") {
		t.Fatalf("unchanged informational metric should be elided:\n%s", out)
	}
}
