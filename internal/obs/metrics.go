package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. Safe for concurrent
// use; all methods are nil-safe no-ops.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down. Safe for concurrent use;
// all methods are nil-safe no-ops.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d to the gauge (CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a streaming histogram over positive float values (typically
// durations in seconds) with exponential base-2 buckets spanning 1ns to
// ~9·10⁹ s. Quantiles are estimated by log-linear interpolation inside the
// bucket that crosses the requested rank, clamped to the observed min/max.
// Safe for concurrent use; all methods are nil-safe no-ops.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

const (
	histBuckets = 64
	histBase    = 1e-9 // upper bound of bucket 0
)

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex returns the bucket whose range contains v: bucket i covers
// (histBase·2^(i-1), histBase·2^i].
func bucketIndex(v float64) int {
	if v <= histBase {
		return 0
	}
	i := int(math.Ceil(math.Log2(v / histBase)))
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) float64 { return histBase * math.Pow(2, float64(i)) }

// Observe records one value. Non-finite and negative values are clamped
// to zero.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := 0; i < histBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = bucketUpper(i - 1)
			}
			hi := bucketUpper(i)
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / n
			}
			v := lo + frac*(hi-lo)
			// Clamp into the observed range: the bucket bounds can
			// overshoot the true extremes by up to 2×.
			if min := h.Min(); v < min {
				v = min
			}
			if max := h.Max(); v > max {
				v = max
			}
			return v
		}
		cum += n
	}
	return h.Max()
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Registry holds named metrics. Metric names follow the Prometheus data
// model and may carry a label suffix, e.g.
// `reveal_stage_duration_seconds{stage="segment"}`; the full string is the
// registry key. Get-or-create methods are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns a nil counter whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil-safe).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use
// (nil-safe).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// baseName strips the label suffix from a metric key:
// `foo{stage="x"}` → `foo`.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// labelSuffix returns the `{...}` part of a metric key, or "".
func labelSuffix(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[i:]
	}
	return ""
}

// mergeLabels splices extra label pairs (already rendered as `k="v"`) into
// a metric key's label set.
func mergeLabels(key string, extra string) string {
	if extra == "" {
		return key
	}
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:len(key)-1] + "," + extra + "}"
	}
	return key + "{" + extra + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format. Histograms are rendered as summaries (quantiles + _sum/_count).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counterKeys := sortedKeys(r.counters)
	gaugeKeys := sortedKeys(r.gauges)
	histKeys := sortedKeys(r.histograms)
	counters := make(map[string]*Counter, len(counterKeys))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(gaugeKeys))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(histKeys))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.RUnlock()

	typed := map[string]bool{}
	for _, k := range counterKeys {
		if base := baseName(k); !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", base); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", k, counters[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range gaugeKeys {
		if base := baseName(k); !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", base); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", k, gauges[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range histKeys {
		base := baseName(k)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", base); err != nil {
				return err
			}
		}
		h := hists[k]
		for _, q := range []float64{0.5, 0.95, 0.99} {
			key := mergeLabels(k, fmt.Sprintf("quantile=%q", fmt.Sprintf("%g", q)))
			if _, err := fmt.Fprintf(w, "%s %g\n", key, h.Quantile(q)); err != nil {
				return err
			}
		}
		suffix := labelSuffix(k)
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, suffix, h.Sum()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot captures every metric's current value for the manifest:
// counters and gauges as scalars, histograms as summaries.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry.
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			snap.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for k, g := range r.gauges {
			snap.Gauges[k] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for k, h := range r.histograms {
			snap.Histograms[k] = h.Snapshot()
		}
	}
	return snap
}

// LabelKey renders a metric key with one label pair in the registry's
// canonical form: LabelKey("m", "state", "done") → `m{state="done"}`.
func LabelKey(name, label, value string) string {
	return name + "{" + label + "=" + quoteLabel(value) + "}"
}

// LabelKeys renders a metric key with any number of label pairs:
// LabelKeys("m", "kind", "attack", "metric", "value_accuracy") →
// `m{kind="attack",metric="value_accuracy"}`. Pairs are rendered in the
// given order — callers must pass a fixed order so the same label set
// always maps to the same series. A trailing odd argument is ignored.
func LabelKeys(name string, labelValuePairs ...string) string {
	out := name + "{"
	for i := 0; i+1 < len(labelValuePairs); i += 2 {
		if i > 0 {
			out += ","
		}
		out += labelValuePairs[i] + "=" + quoteLabel(labelValuePairs[i+1])
	}
	return out + "}"
}

// quoteLabel renders a label value per the Prometheus text exposition
// escaping rules (backslash, double quote, newline).
func quoteLabel(v string) string {
	out := make([]byte, 0, len(v)+2)
	out = append(out, '"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '"', '\\':
			out = append(out, '\\', c)
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	out = append(out, '"')
	return string(out)
}

// OverflowLabel is the label value labeled-metric vectors fall back to once
// their cardinality cap is reached, so an unbounded identifier space (e.g.
// tenant names) cannot grow the registry without bound.
const OverflowLabel = "_other"

// vecCore is the shared label→metric cache behind CounterVec/HistogramVec.
// Lookups are allocated once per label value and served from a read-locked
// map afterwards, keeping labeled metrics off the per-event hot path.
type vecCore[M any] struct {
	mu    sync.RWMutex
	cache map[string]M
	// maxCard caps distinct label values (0 = unbounded); past the cap every
	// new value maps to OverflowLabel.
	maxCard int
	lookup  func(key string) M
	name    string
	label   string
}

func (v *vecCore[M]) with(value string) M {
	v.mu.RLock()
	m, ok := v.cache[value]
	v.mu.RUnlock()
	if ok {
		return m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if m, ok = v.cache[value]; ok {
		return m
	}
	if v.maxCard > 0 && len(v.cache) >= v.maxCard && value != OverflowLabel {
		// Past the cap: collapse onto the overflow series. The individual
		// value is deliberately not cached — caching it would let an
		// unbounded identifier space grow this map without bound, which is
		// exactly what the cap exists to prevent.
		if m, ok = v.cache[OverflowLabel]; !ok {
			m = v.lookup(LabelKey(v.name, v.label, OverflowLabel))
			v.cache[OverflowLabel] = m
		}
		return m
	}
	m = v.lookup(LabelKey(v.name, v.label, value))
	v.cache[value] = m
	return m
}

// CounterVec is a family of counters sharing one metric name and one label
// dimension, e.g. reveal_jobs_total{state=...}. Each label value resolves
// to a pre-registered *Counter exactly once; afterwards With is a map read.
// A nil *CounterVec (nil registry) returns nil counters, whose methods are
// no-ops.
type CounterVec struct{ core vecCore[*Counter] }

// CounterVec builds (or rebinds) a counter family on the registry.
// maxCardinality caps distinct label values (0 = unbounded).
func (r *Registry) CounterVec(name, label string, maxCardinality int) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{core: vecCore[*Counter]{
		cache:   map[string]*Counter{},
		maxCard: maxCardinality,
		lookup:  r.Counter,
		name:    name,
		label:   label,
	}}
}

// With returns the counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	return v.core.with(value)
}

// HistogramVec is a family of histograms sharing one metric name and one
// label dimension, e.g. reveal_jobs_queue_wait_seconds{kind=...}.
type HistogramVec struct{ core vecCore[*Histogram] }

// HistogramVec builds a histogram family on the registry. maxCardinality
// caps distinct label values (0 = unbounded).
func (r *Registry) HistogramVec(name, label string, maxCardinality int) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{core: vecCore[*Histogram]{
		cache:   map[string]*Histogram{},
		maxCard: maxCardinality,
		lookup:  r.Histogram,
		name:    name,
		label:   label,
	}}
}

// With returns the histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	return v.core.with(value)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
