package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// MetricsServer is the opt-in live view of a running campaign:
//
//	/metrics      Prometheus text exposition of the registry
//	/progress     JSON per-stage progress (runs, items, quantiles, active)
//	/healthz      liveness probe: {"status":"ok","uptime_seconds":...}
//	/readyz       readiness probe: 200 while serving, 503 while draining
//	/events       service event journal (long-poll, ?since=SEQ&wait=DUR)
//	/debug/pprof  the standard Go profiling endpoints
//
// ServeMetricsWith additionally mounts an application handler under /api/
// on the same listener (used by reveald) without displacing the built-in
// endpoints above.
type MetricsServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// ServeConfig extends ServeMetrics with the service-grade options.
type ServeConfig struct {
	// API, when non-nil, is mounted under /api/ (unstripped paths).
	API http.Handler
	// APIRoute maps an API request to its bounded route template for the
	// per-route HTTP metrics; nil labels API requests with the raw path.
	APIRoute func(*http.Request) string
	// Ready, when non-nil, backs /readyz: a nil return is ready (200), an
	// error is not ready (503 with the error text). The request context is
	// passed through so probes can honor client disconnects.
	Ready func(ctx context.Context) error
	// Instrument wraps every endpoint (observability ones included) in the
	// trace + labeled-metrics HTTP middleware.
	Instrument bool
}

// progressReport is the /progress payload.
type progressReport struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Stages        []StageStats `json:"stages"`
}

// maxProgressWait bounds the /progress?wait= delay parameter.
const maxProgressWait = 30 * time.Second

// ServeMetrics starts the live endpoints on addr (e.g. ":9090" or
// "127.0.0.1:0") backed by the given recorder. It returns once the
// listener is bound; serving continues in the background until Close.
func ServeMetrics(rec *Recorder, addr string) (*MetricsServer, error) {
	return ServeMetricsWith(rec, addr, nil)
}

// ServeMetricsWith is ServeMetrics with an optional application handler
// mounted under /api/. The handler sees unstripped paths (it should route
// /api/... itself); the observability endpoints — /metrics, /progress,
// /healthz, /readyz, /events, /debug/pprof — stay owned by the metrics
// mux, so mounting an API cannot clobber the liveness probe.
func ServeMetricsWith(rec *Recorder, addr string, api http.Handler) (*MetricsServer, error) {
	return ServeMetricsCfg(rec, addr, ServeConfig{API: api})
}

// maxEventWait bounds the /events?wait= long-poll parameter.
const maxEventWait = 60 * time.Second

// ServeMetricsCfg is the full-configuration form of ServeMetrics: API
// mounting, readiness probing, and HTTP instrumentation.
func ServeMetricsCfg(rec *Recorder, addr string, cfg ServeConfig) (*MetricsServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = rec.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		// ?wait=dur delays the response (bounded): a deterministic hook for
		// exercising graceful shutdown with a request in flight.
		if ws := r.URL.Query().Get("wait"); ws != "" {
			d, err := time.ParseDuration(ws)
			if err != nil || d < 0 {
				http.Error(w, "bad wait duration", http.StatusBadRequest)
				return
			}
			if d > maxProgressWait {
				d = maxProgressWait
			}
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(progressReport{
			UptimeSeconds: rec.Uptime().Seconds(),
			Stages:        rec.StageStats(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": rec.Uptime().Seconds(),
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness is distinct from liveness: a draining daemon is alive
		// (running jobs are finishing) but must stop receiving traffic, so
		// load balancers watch /readyz while orchestrators watch /healthz.
		w.Header().Set("Content-Type", "application/json")
		if cfg.Ready != nil {
			if err := cfg.Ready(r.Context()); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(map[string]any{
					"status": "not_ready", "reason": err.Error(),
				})
				return
			}
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ready",
			"uptime_seconds": rec.Uptime().Seconds(),
		})
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(rec.Events(), w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if cfg.API != nil {
		api := cfg.API
		if cfg.Instrument {
			api = InstrumentHandler(rec, cfg.APIRoute, api)
		}
		mux.Handle("/api/", api)
	}

	var handler http.Handler = mux
	if cfg.Instrument {
		// The observability endpoints themselves are instrumented with their
		// literal paths (a fixed mux, so the label set stays bounded). The
		// API subtree was already wrapped above with its route templates;
		// wrapping the whole mux instead would label every API hit with a
		// raw path. Requests outside /api/ flow through this outer layer.
		obsRoutes := InstrumentHandler(rec, nil, mux)
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/api/") || strings.HasPrefix(r.URL.Path, "/debug/pprof") {
				mux.ServeHTTP(w, r)
				return
			}
			obsRoutes.ServeHTTP(w, r)
		})
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ms := &MetricsServer{
		srv: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 5 * time.Second,
			// The pprof CPU profile streams for its whole sampling window
			// (default 30s, callers pass up to ?seconds=60), so the write
			// timeout must comfortably exceed it.
			WriteTimeout: 90 * time.Second,
			IdleTimeout:  120 * time.Second,
		},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(ms.done)
		_ = ms.srv.Serve(ln)
	}()
	return ms, nil
}

// Addr returns the bound listen address (useful with port 0).
func (m *MetricsServer) Addr() string {
	if m == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Shutdown stops accepting connections and waits — up to ctx — for
// in-flight requests to complete, then waits for the serve loop to exit.
// Returns the ctx error when the drain deadline was hit.
func (m *MetricsServer) Shutdown(ctx context.Context) error {
	if m == nil {
		return nil
	}
	err := m.srv.Shutdown(ctx)
	if err != nil {
		// Drain expired: force-close the remaining connections.
		_ = m.srv.Close()
	}
	<-m.done
	return err
}

// Close stops the server immediately (no drain) and waits for the serve
// loop to exit.
func (m *MetricsServer) Close() {
	if m == nil {
		return
	}
	_ = m.srv.Close()
	<-m.done
}

// EventsResponse is the /events payload: a batch of journal events plus
// the cursor to resume from (?since=NextSeq).
type EventsResponse struct {
	Events  []ServiceEvent `json:"events"`
	NextSeq int64          `json:"next_seq"`
	// Dropped counts events lost to the asynchronous events.jsonl sink (not
	// to this endpoint — the ring never blocks and never loses silently;
	// consumers detect overwrites from gaps in Seq).
	Dropped int64 `json:"dropped,omitempty"`
}

// serveEvents answers GET /events: ?since=SEQ resumes after a cursor,
// ?wait=DUR long-polls until an event arrives or the duration (bounded)
// expires, ?max=N caps the batch. The wait honors the request context, so
// a disconnected long-poller releases its goroutine immediately — and a
// slow or stuck consumer only ever parks here, never in the job queue's
// Append path.
func serveEvents(log *EventLog, w http.ResponseWriter, r *http.Request) {
	if log == nil {
		http.Error(w, "service event journal disabled", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	var since int64
	if s := q.Get("since"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 0 {
			http.Error(w, "bad since cursor", http.StatusBadRequest)
			return
		}
		since = v
	}
	max := 256
	if s := q.Get("max"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
		if v < max {
			max = v
		}
	}
	var events []ServiceEvent
	var next int64
	if ws := q.Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			http.Error(w, "bad wait duration", http.StatusBadRequest)
			return
		}
		if d > maxEventWait {
			d = maxEventWait
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		events, next = log.WaitSince(ctx, since, max)
		cancel()
		if next < since {
			next = since
		}
	} else {
		events, next = log.Since(since, max)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(EventsResponse{Events: events, NextSeq: next, Dropped: log.SinkDropped()})
}
