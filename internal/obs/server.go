package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsServer is the opt-in live view of a running campaign:
//
//	/metrics      Prometheus text exposition of the registry
//	/progress     JSON per-stage progress (runs, items, quantiles, active)
//	/healthz      liveness probe: {"status":"ok","uptime_seconds":...}
//	/debug/pprof  the standard Go profiling endpoints
type MetricsServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// progressReport is the /progress payload.
type progressReport struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Stages        []StageStats `json:"stages"`
}

// ServeMetrics starts the live endpoints on addr (e.g. ":9090" or
// "127.0.0.1:0") backed by the given recorder. It returns once the
// listener is bound; serving continues in the background until Close.
func ServeMetrics(rec *Recorder, addr string) (*MetricsServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = rec.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(progressReport{
			UptimeSeconds: rec.Uptime().Seconds(),
			Stages:        rec.StageStats(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": rec.Uptime().Seconds(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ms := &MetricsServer{
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			// The pprof CPU profile streams for its whole sampling window
			// (default 30s, callers pass up to ?seconds=60), so the write
			// timeout must comfortably exceed it.
			WriteTimeout: 90 * time.Second,
			IdleTimeout:  120 * time.Second,
		},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(ms.done)
		_ = ms.srv.Serve(ln)
	}()
	return ms, nil
}

// Addr returns the bound listen address (useful with port 0).
func (m *MetricsServer) Addr() string {
	if m == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Close stops the server and waits for the serve loop to exit.
func (m *MetricsServer) Close() {
	if m == nil {
		return
	}
	_ = m.srv.Close()
	<-m.done
}
