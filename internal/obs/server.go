package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsServer is the opt-in live view of a running campaign:
//
//	/metrics      Prometheus text exposition of the registry
//	/progress     JSON per-stage progress (runs, items, quantiles, active)
//	/healthz      liveness probe: {"status":"ok","uptime_seconds":...}
//	/debug/pprof  the standard Go profiling endpoints
//
// ServeMetricsWith additionally mounts an application handler under /api/
// on the same listener (used by reveald) without displacing the built-in
// endpoints above.
type MetricsServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// progressReport is the /progress payload.
type progressReport struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Stages        []StageStats `json:"stages"`
}

// maxProgressWait bounds the /progress?wait= delay parameter.
const maxProgressWait = 30 * time.Second

// ServeMetrics starts the live endpoints on addr (e.g. ":9090" or
// "127.0.0.1:0") backed by the given recorder. It returns once the
// listener is bound; serving continues in the background until Close.
func ServeMetrics(rec *Recorder, addr string) (*MetricsServer, error) {
	return ServeMetricsWith(rec, addr, nil)
}

// ServeMetricsWith is ServeMetrics with an optional application handler
// mounted under /api/. The handler sees unstripped paths (it should route
// /api/... itself); the observability endpoints — /metrics, /progress,
// /healthz, /debug/pprof — stay owned by the metrics mux, so mounting an
// API cannot clobber the liveness probe.
func ServeMetricsWith(rec *Recorder, addr string, api http.Handler) (*MetricsServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = rec.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		// ?wait=dur delays the response (bounded): a deterministic hook for
		// exercising graceful shutdown with a request in flight.
		if ws := r.URL.Query().Get("wait"); ws != "" {
			d, err := time.ParseDuration(ws)
			if err != nil || d < 0 {
				http.Error(w, "bad wait duration", http.StatusBadRequest)
				return
			}
			if d > maxProgressWait {
				d = maxProgressWait
			}
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(progressReport{
			UptimeSeconds: rec.Uptime().Seconds(),
			Stages:        rec.StageStats(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": rec.Uptime().Seconds(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if api != nil {
		mux.Handle("/api/", api)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ms := &MetricsServer{
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			// The pprof CPU profile streams for its whole sampling window
			// (default 30s, callers pass up to ?seconds=60), so the write
			// timeout must comfortably exceed it.
			WriteTimeout: 90 * time.Second,
			IdleTimeout:  120 * time.Second,
		},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(ms.done)
		_ = ms.srv.Serve(ln)
	}()
	return ms, nil
}

// Addr returns the bound listen address (useful with port 0).
func (m *MetricsServer) Addr() string {
	if m == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Shutdown stops accepting connections and waits — up to ctx — for
// in-flight requests to complete, then waits for the serve loop to exit.
// Returns the ctx error when the drain deadline was hit.
func (m *MetricsServer) Shutdown(ctx context.Context) error {
	if m == nil {
		return nil
	}
	err := m.srv.Shutdown(ctx)
	if err != nil {
		// Drain expired: force-close the remaining connections.
		_ = m.srv.Close()
	}
	<-m.done
	return err
}

// Close stops the server immediately (no drain) and waits for the serve
// loop to exit.
func (m *MetricsServer) Close() {
	if m == nil {
		return
	}
	_ = m.srv.Close()
	<-m.done
}
