package obs

// FuzzParseRunMetrics: the flattener behind the `revealctl compare`
// regression gate must never panic on adversarial JSON, and everything it
// accepts must contain only finite, well-named metrics.

import (
	"strings"
	"testing"
)

func FuzzParseRunMetrics(f *testing.F) {
	f.Add([]byte(`{"ns_per_op": 120.5, "items_per_second": 800, "iterations": 3, "metrics": {"accuracy": 0.96}}`))
	f.Add([]byte(`{"duration_seconds": 1.25, "results": {"mean_value_accuracy": 0.9, "nested": {"bikz": 128}}}`))
	f.Add([]byte(`{"results": {"flag": true}, "stages": [{"stage": "classify", "items_per_second": 5000}]}`))
	f.Add([]byte(`{"stages": [{"stage": "profile"}, 42, null]}`))
	f.Add([]byte(`{"results": {"deep": {"deeper": {"deepest": 1e308}}}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"ns_per_op": "not a number"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rm, err := ParseRunMetrics("fuzz.json", data)
		if err != nil {
			return
		}
		if rm.Kind != "manifest" && rm.Kind != "bench" {
			t.Fatalf("accepted artifact with kind %q", rm.Kind)
		}
		if len(rm.Values) == 0 {
			t.Fatal("accepted artifact with no metrics")
		}
		for name, v := range rm.Values {
			if name == "" {
				t.Fatal("empty metric name")
			}
			if strings.HasPrefix(name, ".") || strings.HasSuffix(name, ".") {
				t.Fatalf("malformed metric name %q", name)
			}
			// JSON numbers are finite by construction; the flattener must
			// not manufacture NaN/Inf out of them.
			if v != v {
				t.Fatalf("metric %q is NaN", name)
			}
		}
	})
}
