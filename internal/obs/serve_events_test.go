package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("GET %s: parsing %q: %v", url, data, err)
		}
	}
	return resp.StatusCode
}

// TestReadyzReflectsDrain checks the readiness probe the daemon flips on
// SIGTERM: ready while serving, 503 with the reason once draining, while
// /healthz (liveness) keeps answering 200 throughout.
func TestReadyzReflectsDrain(t *testing.T) {
	rec := New(Options{})
	var draining atomic.Bool
	srv, err := ServeMetricsCfg(rec, "127.0.0.1:0", ServeConfig{
		Ready: func(context.Context) error {
			if draining.Load() {
				return errors.New("draining")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var ready map[string]any
	if code := getJSON(t, base+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("/readyz while serving = %d, want 200", code)
	}
	if ready["status"] != "ready" {
		t.Fatalf("/readyz payload = %v", ready)
	}

	draining.Store(true)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "draining") {
		t.Fatalf("503 body does not carry the reason: %s", body)
	}
	if code := getJSON(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (liveness is not readiness)", code)
	}
}

// TestEventsEndpoint drives the /events journal endpoint: batch reads,
// cursor resumption, max capping, parameter validation, and the long-poll
// woken by a new event.
func TestEventsEndpoint(t *testing.T) {
	rec := New(Options{EventCapacity: 64})
	srv, err := ServeMetricsCfg(rec, "127.0.0.1:0", ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	for i := 0; i < 3; i++ {
		rec.Emit(ServiceEvent{Type: EventJobSubmitted, JobID: fmt.Sprintf("job-%d", i)})
	}
	var resp EventsResponse
	if code := getJSON(t, base+"/events", &resp); code != http.StatusOK {
		t.Fatalf("/events = %d", code)
	}
	if len(resp.Events) != 3 || resp.NextSeq != 3 {
		t.Fatalf("/events = %d events next %d, want 3, 3", len(resp.Events), resp.NextSeq)
	}
	if code := getJSON(t, base+"/events?since=3", &resp); code != http.StatusOK || len(resp.Events) != 0 || resp.NextSeq != 3 {
		t.Fatalf("caught-up poll = %d, %d events, next %d", code, len(resp.Events), resp.NextSeq)
	}
	if code := getJSON(t, base+"/events?since=1&max=1", &resp); code != http.StatusOK || len(resp.Events) != 1 || resp.Events[0].Seq != 2 || resp.NextSeq != 2 {
		t.Fatalf("capped poll = %d, %+v next %d", code, resp.Events, resp.NextSeq)
	}
	for _, bad := range []string{"?since=bogus", "?since=-1", "?max=0", "?max=x", "?wait=bogus", "?wait=-1s"} {
		if code := getJSON(t, base+"/events"+bad, nil); code != http.StatusBadRequest {
			t.Errorf("/events%s = %d, want 400", bad, code)
		}
	}

	// Long-poll: a waiter on the tail is answered by the next event.
	got := make(chan EventsResponse, 1)
	go func() {
		var r EventsResponse
		getJSON(t, base+"/events?since=3&wait=10s", &r)
		got <- r
	}()
	time.Sleep(50 * time.Millisecond)
	rec.Emit(ServiceEvent{Type: EventCacheFill, Detail: "trained"})
	select {
	case r := <-got:
		if len(r.Events) != 1 || r.Events[0].Type != EventCacheFill || r.NextSeq != 4 {
			t.Fatalf("long-poll woke with %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke on a new event")
	}

	// A caught-up long-poll that times out must not rewind the cursor.
	if code := getJSON(t, base+"/events?since=4&wait=50ms", &resp); code != http.StatusOK || resp.NextSeq != 4 {
		t.Fatalf("timed-out long-poll = %d next %d, want 200 next 4", code, resp.NextSeq)
	}
}

// TestEventsEndpointDisabled: without EventCapacity the journal does not
// exist and the endpoint says so instead of returning empty batches.
func TestEventsEndpointDisabled(t *testing.T) {
	rec := New(Options{})
	srv, err := ServeMetricsCfg(rec, "127.0.0.1:0", ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code := getJSON(t, "http://"+srv.Addr()+"/events", nil); code != http.StatusNotFound {
		t.Fatalf("/events without a journal = %d, want 404", code)
	}
}

// TestInstrumentHandlerTraceIdentity pins the middleware's trace contract:
// a valid supplied X-Reveal-Trace-Id is adopted and echoed, a missing or
// malformed one is replaced by a freshly minted valid ID, and the handler
// sees the same identity on its request context.
func TestInstrumentHandlerTraceIdentity(t *testing.T) {
	rec := New(Options{})
	var seen string
	h := InstrumentHandler(rec, func(*http.Request) string { return "/fixed" },
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			seen = TraceIDFrom(r.Context())
			w.WriteHeader(http.StatusNoContent)
		}))
	do := func(supplied string) (echoed string) {
		req := httptest.NewRequest(http.MethodGet, "/fixed", nil)
		if supplied != "" {
			req.Header.Set(TraceHeader, supplied)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Header().Get(TraceHeader)
	}

	if got := do("client-supplied-1"); got != "client-supplied-1" || seen != "client-supplied-1" {
		t.Fatalf("valid supplied ID not adopted: echoed %q, handler saw %q", got, seen)
	}
	if got := do(""); !ValidTraceID(got) || seen != got {
		t.Fatalf("minted ID malformed or not propagated: echoed %q, handler saw %q", got, seen)
	}
	if got := do("bad header!"); got == "bad header!" || !ValidTraceID(got) || seen != got {
		t.Fatalf("malformed supplied ID not replaced: echoed %q, handler saw %q", got, seen)
	}

	snap := rec.Registry().Snapshot()
	if got := snap.Counters[LabelKey(MetricHTTPRequests, "route", "/fixed")]; got != 3 {
		t.Errorf("per-route request counter = %d, want 3", got)
	}
	if got := snap.Counters[LabelKey(MetricHTTPResponses, "code", "2xx")]; got != 3 {
		t.Errorf("2xx response counter = %d, want 3", got)
	}
	if got := snap.Histograms[LabelKey(MetricHTTPLatency, "route", "/fixed")].Count; got != 3 {
		t.Errorf("per-route latency observations = %d, want 3", got)
	}
	if got := snap.Gauges[MetricHTTPInflight]; got != 0 {
		t.Errorf("inflight gauge did not return to 0: %g", got)
	}
}

// TestConcurrentMetricsScrape scrapes /metrics while counters, labeled
// vectors, histograms, and the event journal mutate underneath it. Every
// scrape must remain a valid Prometheus exposition (the race detector
// covers the synchronization; the parser covers torn output).
func TestConcurrentMetricsScrape(t *testing.T) {
	rec := New(Options{EventCapacity: 64})
	srv, err := ServeMetricsCfg(rec, "127.0.0.1:0", ServeConfig{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	reg := rec.Registry()
	vec := reg.CounterVec("reveal_chaos_total", "w", 4)
	hist := reg.HistogramVec("reveal_chaos_seconds", "w", 4)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				label := fmt.Sprintf("w%d", i%6)
				vec.With(label).Inc()
				hist.With(label).Observe(float64(i%10) / 10)
				reg.Gauge("reveal_chaos_depth").Set(float64(i))
				rec.Emit(ServiceEvent{Type: EventJobClaimed, JobID: fmt.Sprintf("g%d-%d", g, i)})
			}
		}(g)
	}

	var scrapeErr error
	var scrapeMu sync.Mutex
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(base + "/metrics")
				if err == nil {
					var buf bytes.Buffer
					_, err = io.Copy(&buf, resp.Body)
					resp.Body.Close()
					if err == nil {
						_, err = ParsePrometheusText(&buf)
					}
				}
				if err != nil {
					scrapeMu.Lock()
					if scrapeErr == nil {
						scrapeErr = err
					}
					scrapeMu.Unlock()
					return
				}
			}
		}()
	}
	// Let scrapers finish, then stop the mutators.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("scrape/mutate goroutines wedged")
	}
	if scrapeErr != nil {
		t.Fatalf("concurrent scrape produced an invalid exposition: %v", scrapeErr)
	}
}
