package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Service-journal metric names.
const (
	MetricServiceEvents        = "reveal_service_events_total"
	MetricServiceEventsDropped = "reveal_service_events_dropped_total"
)

// Well-known service event types. The set is open — emitters may add new
// types without touching this file — but the core job lifecycle uses these.
const (
	EventJobSubmitted = "job_submitted"
	EventJobClaimed   = "job_claimed"
	EventJobRetried   = "job_retried"
	EventJobFinished  = "job_finished"
	// EventJobLeased marks a worker taking a lease on a job through the
	// fabric lease API (the distributed analogue of job_claimed).
	EventJobLeased = "job_leased"
	// EventLeaseExpired marks a lease whose holder stopped heartbeating; the
	// job is requeued (or failed when out of attempts).
	EventLeaseExpired = "lease_expired"
	// EventJobExpired marks a job whose absolute deadline passed while its
	// lease was held by a dead worker; Detail names the lease holder.
	EventJobExpired = "job_expired"
	// EventWALRestore summarizes a queue restore from the write-ahead log
	// at startup (requeued/terminal counts, replay horizon).
	EventWALRestore   = "wal_restore"
	EventCacheFill    = "cache_fill"
	EventDrainStarted = "drain_started"
	EventDrainDone    = "drain_done"
	// EventQualityDrift is emitted by the history drift watchdog when a
	// gated quality metric's rolling mean crosses its tolerance against
	// the pinned baseline.
	EventQualityDrift = "quality_drift"
)

// ServiceEvent is one record in the append-only service journal
// (events.jsonl and the /events endpoint): a job lifecycle transition, a
// template-cache fill, a drain, … Every field except Seq/Time/Type is
// optional.
type ServiceEvent struct {
	// Seq is the journal sequence number, assigned by Append. Consumers
	// long-poll /events with ?since=<seq> to resume where they left off.
	Seq int64 `json:"seq"`
	// Time is the event timestamp, assigned by Append.
	Time time.Time `json:"time"`
	// Type is the event kind (see the Event* constants).
	Type string `json:"type"`
	// JobID, TraceID, Kind, and Tenant attribute the event to the job,
	// request, workload, and tenant that produced it.
	JobID   string `json:"job_id,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	// State is the resulting job state for lifecycle events.
	State string `json:"state,omitempty"`
	// Attempt is the 1-based attempt number for claim/retry/finish events.
	Attempt int `json:"attempt,omitempty"`
	// Detail carries a free-form human-readable annotation (error text,
	// cache key, drain reason).
	Detail string `json:"detail,omitempty"`
}

// EventLog is a bounded ring buffer of service events with monotonically
// increasing sequence numbers, a long-poll wait primitive, and an optional
// asynchronous JSONL sink. Producers never block: once the ring is full the
// oldest events are overwritten, and a slow sink drops (and counts) rather
// than stalls. Safe for concurrent use; a nil *EventLog ignores everything.
type EventLog struct {
	mu   sync.Mutex
	buf  []ServiceEvent // ring storage, len(buf) == capacity
	head int            // index of the oldest event
	n    int            // number of live events
	seq  int64          // last assigned sequence number
	wake chan struct{}  // closed+replaced on every Append (long-poll broadcast)

	reg *Registry // aggregate counters (may be nil)

	sinkCh      chan ServiceEvent
	sinkDone    chan struct{}
	sinkDropped atomic.Int64
	sinkOnce    sync.Once
}

// NewEventLog builds a ring holding at most capacity events (minimum 16).
// reg, when non-nil, receives the aggregate event counters.
func NewEventLog(capacity int, reg *Registry) *EventLog {
	if capacity < 16 {
		capacity = 16
	}
	return &EventLog{
		buf:  make([]ServiceEvent, capacity),
		wake: make(chan struct{}),
		reg:  reg,
	}
}

// Append stamps ev with the next sequence number and the current time,
// stores it in the ring (overwriting the oldest event when full), forwards
// it to the sink, and wakes long-pollers. It never blocks on consumers.
func (l *EventLog) Append(ev ServiceEvent) ServiceEvent {
	if l == nil {
		return ev
	}
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now().UTC()
	}
	if l.n < len(l.buf) {
		l.buf[(l.head+l.n)%len(l.buf)] = ev
		l.n++
	} else {
		l.buf[l.head] = ev
		l.head = (l.head + 1) % len(l.buf)
	}
	wake := l.wake
	l.wake = make(chan struct{})
	sink := l.sinkCh
	l.mu.Unlock()
	close(wake)

	l.reg.Counter(MetricServiceEvents).Inc()
	if sink != nil {
		select {
		case sink <- ev:
		default:
			// The sink writer is behind; dropping beats blocking the queue.
			l.sinkDropped.Add(1)
			l.reg.Counter(MetricServiceEventsDropped).Inc()
		}
	}
	return ev
}

// Since returns up to max events with Seq > after (oldest first) plus the
// sequence number to resume from. When the requested range has been
// overwritten, the oldest retained events are returned — consumers detect
// the gap from the jump in Seq.
func (l *EventLog) Since(after int64, max int) (events []ServiceEvent, next int64) {
	if l == nil {
		return nil, after
	}
	if max <= 0 {
		max = 256
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	next = l.seq
	if next < after {
		// The caller's cursor is ahead of this log (e.g. the daemon
		// restarted); restart them from the current tail.
		after = next
	}
	for i := 0; i < l.n && len(events) < max; i++ {
		ev := l.buf[(l.head+i)%len(l.buf)]
		if ev.Seq > after {
			events = append(events, ev)
		}
	}
	if len(events) > 0 {
		next = events[len(events)-1].Seq
	} else {
		next = after
	}
	return events, next
}

// WaitSince is Since with a long-poll: when no event newer than after is
// buffered it blocks until one arrives or ctx is done, then returns
// whatever is available (possibly nothing on timeout).
func (l *EventLog) WaitSince(ctx context.Context, after int64, max int) ([]ServiceEvent, int64) {
	if l == nil {
		return nil, after
	}
	for {
		l.mu.Lock()
		wake := l.wake
		haveNewer := l.seq > after
		l.mu.Unlock()
		if haveNewer {
			return l.Since(after, max)
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, after
		}
	}
}

// LastSeq returns the most recently assigned sequence number.
func (l *EventLog) LastSeq() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// SinkDropped reports how many events the asynchronous sink dropped because
// its writer fell behind.
func (l *EventLog) SinkDropped() int64 {
	if l == nil {
		return 0
	}
	return l.sinkDropped.Load()
}

// AttachSink starts a background goroutine encoding every appended event as
// one JSON line to w (the service's events.jsonl). The writer is decoupled
// from producers by a bounded channel: when it falls behind, events are
// dropped and counted instead of backpressuring the job queue. Writes are
// buffered and flushed whenever the channel runs dry, so the file trails
// the journal only while a burst is in flight. Call CloseSink to flush,
// fsync, and stop. Only the first AttachSink takes effect.
func (l *EventLog) AttachSink(w io.Writer) {
	if l == nil || w == nil {
		return
	}
	l.sinkOnce.Do(func() {
		ch := make(chan ServiceEvent, 1024)
		done := make(chan struct{})
		l.mu.Lock()
		l.sinkCh = ch
		l.sinkDone = done
		l.mu.Unlock()
		go func() {
			defer close(done)
			bw := bufio.NewWriter(w)
			enc := json.NewEncoder(bw)
			// unflushed counts events encoded into the buffer since the
			// last successful flush: a failing flush loses exactly those.
			unflushed := 0
			drop := func(n int) {
				if n <= 0 {
					return
				}
				l.sinkDropped.Add(int64(n))
				l.reg.Counter(MetricServiceEventsDropped).Add(int64(n))
			}
			flush := func() {
				if unflushed == 0 {
					return
				}
				if err := bw.Flush(); err != nil {
					// A dead sink (disk full, closed file) must not wedge
					// the drain loop; count the loss and keep consuming.
					drop(unflushed)
				}
				unflushed = 0
			}
			for ev := range ch {
				if err := enc.Encode(ev); err != nil {
					drop(1)
				} else {
					unflushed++
				}
				if len(ch) == 0 {
					flush()
				}
			}
			// Shutdown: everything queued has been encoded — push it to
			// the file and force it to stable storage so the journal is
			// complete on disk even when the process exits right after a
			// SIGTERM drain.
			flush()
			if s, ok := w.(interface{ Sync() error }); ok {
				_ = s.Sync()
			}
		}()
	})
}

// CloseSink stops the sink goroutine after it has drained, flushed, and
// fsynced every queued event, and returns the total number of events the
// sink dropped over its lifetime (0 = the journal file is complete). Safe
// to call without an attached sink, and at most once.
func (l *EventLog) CloseSink() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	ch := l.sinkCh
	done := l.sinkDone
	l.sinkCh = nil
	l.mu.Unlock()
	if ch == nil {
		return l.sinkDropped.Load()
	}
	close(ch)
	<-done
	return l.sinkDropped.Load()
}

// Events returns the recorder's service event log (nil when disabled).
func (r *Recorder) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.serviceEvents
}

// Emit appends a service event to the recorder's event log. Nil-safe: with
// observability disabled (or the event log not configured) it is a no-op.
func (r *Recorder) Emit(ev ServiceEvent) {
	if r == nil {
		return
	}
	r.serviceEvents.Append(ev)
}

// Emit appends a service event on the global recorder.
func Emit(ev ServiceEvent) { Global().Emit(ev) }
