package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestCounterVecCardinalityCap drives a capped vector past its limit: the
// first maxCard values get their own series, everything after lands on the
// single OverflowLabel series, and — critically — the registry does not
// grow one series per unbounded input value.
func TestCounterVecCardinalityCap(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("reveal_capped_total", "tenant", 3)
	for i := 0; i < 50; i++ {
		vec.With(fmt.Sprintf("tenant-%02d", i)).Inc()
	}
	snap := reg.Snapshot()
	for i := 0; i < 3; i++ {
		key := LabelKey("reveal_capped_total", "tenant", fmt.Sprintf("tenant-%02d", i))
		if snap.Counters[key] != 1 {
			t.Errorf("%s = %d, want 1", key, snap.Counters[key])
		}
	}
	overflow := LabelKey("reveal_capped_total", "tenant", OverflowLabel)
	if snap.Counters[overflow] != 47 {
		t.Errorf("%s = %d, want 47", overflow, snap.Counters[overflow])
	}
	series := 0
	for k := range snap.Counters {
		if strings.HasPrefix(k, "reveal_capped_total{") {
			series++
		}
	}
	if series != 4 {
		t.Fatalf("capped vec registered %d series, want 3 + overflow", series)
	}
	// Repeated lookups resolve to the same underlying counter.
	if vec.With("tenant-00") != vec.With("tenant-00") {
		t.Error("cache returned distinct counters for one label value")
	}
	if vec.With("tenant-40") != vec.With("tenant-41") {
		t.Error("overflow values resolved to distinct counters")
	}
}

// TestHistogramVecCardinalityCap is the histogram analogue.
func TestHistogramVecCardinalityCap(t *testing.T) {
	reg := NewRegistry()
	vec := reg.HistogramVec("reveal_capped_seconds", "kind", 2)
	for i := 0; i < 10; i++ {
		vec.With(fmt.Sprintf("kind-%d", i)).Observe(float64(i))
	}
	snap := reg.Snapshot()
	series := 0
	for k := range snap.Histograms {
		if strings.HasPrefix(k, "reveal_capped_seconds{") {
			series++
		}
	}
	if series != 3 {
		t.Fatalf("capped histogram vec registered %d series, want 2 + overflow", series)
	}
	if got := snap.Histograms[LabelKey("reveal_capped_seconds", "kind", OverflowLabel)].Count; got != 8 {
		t.Fatalf("overflow histogram observed %d, want 8", got)
	}
}

// TestVecNilSafe checks the disabled-observability path: a nil registry
// yields nil vectors whose metrics are no-op.
func TestVecNilSafe(t *testing.T) {
	var reg *Registry
	cv := reg.CounterVec("x", "l", 4)
	if cv != nil {
		t.Fatal("nil registry built a counter vec")
	}
	cv.With("a").Inc() // must not panic
	hv := reg.HistogramVec("x", "l", 4)
	if hv != nil {
		t.Fatal("nil registry built a histogram vec")
	}
	hv.With("a").Observe(1)
}

// TestVecConcurrent hammers a vector from many goroutines while snapshots
// are taken — primarily a race-detector target for the lookup cache.
func TestVecConcurrent(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("reveal_conc_total", "w", 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				vec.With(fmt.Sprintf("w%d", i%8)).Inc()
				if i%100 == 0 {
					reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for k, v := range reg.Snapshot().Counters {
		if strings.HasPrefix(k, "reveal_conc_total{") {
			total += v
		}
	}
	if total != 8*500 {
		t.Fatalf("lost increments: %d, want %d", total, 8*500)
	}
}
