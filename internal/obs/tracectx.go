package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// TraceHeader is the HTTP header carrying a request's trace ID in both
// directions: clients may supply one on submission, and every reveald
// response echoes the request's (possibly freshly minted) trace ID so
// `revealctl submit` can print a correlatable identifier.
const TraceHeader = "X-Reveal-Trace-Id"

// TraceContext is the propagated identity of one request as it crosses the
// service boundary: HTTP handler → job queue → worker attempt → pipeline
// stages. The zero value means "no trace".
type TraceContext struct {
	// TraceID identifies the whole request (16 lowercase hex chars).
	TraceID string
	// SpanID identifies the immediate parent span within the trace; child
	// spans record it so cross-process flow events can be stitched.
	SpanID string
}

// Valid reports whether the context carries a trace ID.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" }

// traceCtxKey is the context key for TraceContext values.
type traceCtxKey struct{}

// WithTraceContext returns a context carrying tc.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the TraceContext from ctx (zero value when
// absent).
func TraceContextFrom(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}

// TraceIDFrom returns the trace ID carried by ctx ("" when absent).
func TraceIDFrom(ctx context.Context) string { return TraceContextFrom(ctx).TraceID }

// traceSeq breaks ties when the crypto source is unavailable, so IDs stay
// unique within the process even on the fallback path.
var traceSeq atomic.Uint64

// NewTraceID mints a 64-bit random trace ID rendered as 16 hex characters.
// Trace IDs are correlation handles, not part of any replayed computation,
// so they are intentionally outside the deterministic seed discipline.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The crypto source essentially cannot fail; fall back to a
		// process-local counter rather than panicking in a middleware.
		n := traceSeq.Add(1)
		for i := 0; i < 8; i++ {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s is usable as an externally supplied trace
// ID: 1–64 characters drawn from [0-9a-zA-Z_.-]. Anything else is replaced
// by a freshly minted ID instead of being echoed into logs and journals.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '_', c == '.', c == '-':
		default:
			return false
		}
	}
	return true
}
