package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// Manifest is the reproducibility record written to <run-dir>/manifest.json:
// everything needed to identify, compare, and re-run a campaign.
type Manifest struct {
	Tool    string   `json:"tool"`
	Command string   `json:"command,omitempty"`
	Args    []string `json:"args,omitempty"`
	// TraceID is the request trace identity the run belongs to (service
	// jobs only): the same ID appears in the HTTP response header, the job
	// journal, run.log lines, and the trace.json flow events.
	TraceID     string    `json:"trace_id,omitempty"`
	Seed        uint64    `json:"seed"`
	GitDescribe string    `json:"git_describe,omitempty"`
	GoVersion   string    `json:"go_version,omitempty"`
	StartTime   time.Time `json:"start_time"`
	EndTime     time.Time `json:"end_time"`
	// DurationSeconds is the wall time of the whole run.
	DurationSeconds float64 `json:"duration_seconds"`
	// Config is the campaign configuration, marshaled verbatim.
	Config json.RawMessage `json:"config,omitempty"`
	// Stages carries the per-stage timing/throughput aggregates.
	Stages []StageStats `json:"stages,omitempty"`
	// Results holds the campaign's headline numbers (accuracy, bikz,
	// confusion summary, …).
	Results map[string]any `json:"results,omitempty"`
	// Metrics is the full registry snapshot at the end of the run.
	Metrics RegistrySnapshot `json:"metrics,omitempty"`
}

// WriteManifest writes m as indented JSON.
func WriteManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest loads a manifest written by WriteManifest.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parsing manifest %s: %w", path, err)
	}
	return &m, nil
}

// GitDescribe returns `git describe --always --dirty` for the working tree
// ("" when git or the repository is unavailable).
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Run is an archived campaign: a run directory, a recorder installed as
// the global one, and the manifest being accumulated. Finish writes
// manifest.json, metrics.txt, and closes the run.log file.
type Run struct {
	Dir      string
	Recorder *Recorder
	Manifest *Manifest

	logFile    *os.File
	wasGlobal  *Recorder
	metricsSrv *MetricsServer
}

// RunOptions configures StartRun.
type RunOptions struct {
	// Tool and Command identify the entry point ("revealctl", "attack").
	Tool, Command string
	// Args are the raw CLI arguments, recorded for reproducibility.
	Args []string
	// Seed is the campaign seed.
	Seed uint64
	// Config is marshaled into the manifest's config field.
	Config any
	// LogLevel bounds the run.log / console stream (default Info).
	LogLevel slog.Level
	// JSONLog switches console logging to JSON records.
	JSONLog bool
	// Quiet suppresses console logging (run.log is still written).
	Quiet bool
	// MetricsAddr, when non-empty, serves /metrics, /progress and
	// /debug/pprof on that address for the lifetime of the run.
	MetricsAddr string
	// TraceCapacity bounds the span trace-event buffer written to
	// trace.json (0 = DefaultTraceCapacity, negative disables tracing).
	TraceCapacity int
	// CoeffCapacity bounds the per-coefficient journal written to
	// coeffs.jsonl (0 = DefaultCoeffCapacity, negative disables it).
	CoeffCapacity int
}

// capacityOrDefault resolves the StartRun capacity convention.
func capacityOrDefault(v, def int) int {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return def
	default:
		return v
	}
}

// StartRun creates dir, builds a recorder logging to both stderr and
// <dir>/run.log, installs it globally, and returns the Run handle.
func StartRun(dir string, opts RunOptions) (*Run, error) {
	if dir == "" {
		return nil, fmt.Errorf("obs: empty run directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating run dir: %w", err)
	}
	logFile, err := os.Create(filepath.Join(dir, "run.log"))
	if err != nil {
		return nil, fmt.Errorf("obs: creating run.log: %w", err)
	}
	fileLogger := NewLogger(LogOptions{Level: opts.LogLevel, JSON: true, Output: logFile})
	var console *slog.Logger
	if !opts.Quiet {
		console = NewLogger(LogOptions{Level: opts.LogLevel, JSON: opts.JSONLog, Output: os.Stderr})
	}
	rec := New(Options{
		Logger:        TeeLogger(fileLogger, console),
		TraceCapacity: capacityOrDefault(opts.TraceCapacity, DefaultTraceCapacity),
		CoeffCapacity: capacityOrDefault(opts.CoeffCapacity, DefaultCoeffCapacity),
	})

	var cfg json.RawMessage
	if opts.Config != nil {
		cfg, err = json.Marshal(opts.Config)
		if err != nil {
			logFile.Close()
			return nil, fmt.Errorf("obs: marshaling run config: %w", err)
		}
	}
	run := &Run{
		Dir:      dir,
		Recorder: rec,
		Manifest: &Manifest{
			Tool:        opts.Tool,
			Command:     opts.Command,
			Args:        opts.Args,
			Seed:        opts.Seed,
			GitDescribe: GitDescribe(),
			GoVersion:   runtime.Version(),
			StartTime:   time.Now().UTC(),
			Config:      cfg,
		},
		logFile:   logFile,
		wasGlobal: Global(),
	}
	SetGlobal(rec)
	if opts.MetricsAddr != "" {
		srv, err := ServeMetrics(rec, opts.MetricsAddr)
		if err != nil {
			rec.Logger().Warn("metrics server failed to start",
				"addr", opts.MetricsAddr, "err", err)
		} else {
			run.metricsSrv = srv
			rec.Logger().Info("metrics server listening", "addr", srv.Addr())
		}
	}
	rec.Logger().Info("run started", "tool", opts.Tool, "command", opts.Command,
		"dir", dir, "seed", opts.Seed, "git", run.Manifest.GitDescribe)
	return run, nil
}

// SetResult records one headline result in the manifest.
func (r *Run) SetResult(key string, value any) {
	if r == nil {
		return
	}
	if r.Manifest.Results == nil {
		r.Manifest.Results = map[string]any{}
	}
	r.Manifest.Results[key] = value
}

// Finish seals the manifest (end time, stage stats, metric snapshot),
// writes manifest.json and the Prometheus-text metrics.txt into the run
// directory, restores the previous global recorder, and closes run.log.
func (r *Run) Finish() error {
	if r == nil {
		return nil
	}
	r.Manifest.EndTime = time.Now().UTC()
	r.Manifest.DurationSeconds = r.Manifest.EndTime.Sub(r.Manifest.StartTime).Seconds()
	r.Manifest.Stages = r.Recorder.StageStats()
	r.Manifest.Metrics = r.Recorder.Registry().Snapshot()

	var firstErr error
	if err := WriteManifest(filepath.Join(r.Dir, "manifest.json"), r.Manifest); err != nil {
		firstErr = err
	}
	mf, err := os.Create(filepath.Join(r.Dir, "metrics.txt"))
	if err == nil {
		err = r.Recorder.Registry().WritePrometheus(mf)
		if cerr := mf.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil && firstErr == nil {
		firstErr = fmt.Errorf("obs: writing metrics.txt: %w", err)
	}
	writeEvents := func(name string, write func(io.Writer) error) {
		f, err := os.Create(filepath.Join(r.Dir, name))
		if err == nil {
			err = write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("obs: writing %s: %w", name, err)
		}
	}
	if r.Recorder.TracingEnabled() {
		writeEvents("trace.json", r.Recorder.WriteTraceJSON)
	}
	if r.Recorder.CoeffJournalEnabled() {
		writeEvents("coeffs.jsonl", r.Recorder.WriteCoeffsJSONL)
	}
	r.Recorder.Logger().Info("run finished",
		"duration", time.Duration(r.Manifest.DurationSeconds*float64(time.Second)),
		"manifest", filepath.Join(r.Dir, "manifest.json"))
	if r.metricsSrv != nil {
		r.metricsSrv.Close()
	}
	SetGlobal(r.wasGlobal)
	if err := r.logFile.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
