package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// RunMetrics is the flattened numeric view of a run artifact — either a
// manifest.json written by StartRun or a BENCH_*.json benchmark snapshot —
// the common currency of the `revealctl compare` regression gate.
type RunMetrics struct {
	Path string
	// Kind is "manifest" or "bench".
	Kind string
	// Values maps dotted metric names (e.g. "results.mean_value_accuracy",
	// "stage.classify.items_per_second", "ns_per_op") to their numbers.
	Values map[string]float64
}

// LoadRunMetrics reads a manifest.json or BENCH_*.json file and flattens
// every numeric field into dotted metric names.
func LoadRunMetrics(path string) (*RunMetrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseRunMetrics(path, data)
}

// ParseRunMetrics flattens an already-read run artifact; path is used only
// for labeling. Split from LoadRunMetrics so the parser can be fuzzed
// without a filesystem.
func ParseRunMetrics(path string, data []byte) (*RunMetrics, error) {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: parsing %s: %w", path, err)
	}
	rm := &RunMetrics{Path: path, Values: map[string]float64{}}
	if _, isBench := doc["ns_per_op"]; isBench {
		rm.Kind = "bench"
		for _, key := range []string{"ns_per_op", "items_per_second", "iterations"} {
			if v, ok := doc[key].(float64); ok {
				rm.Values[key] = v
			}
		}
		flattenJSON("metrics", doc["metrics"], rm.Values)
	} else {
		rm.Kind = "manifest"
		if v, ok := doc["duration_seconds"].(float64); ok {
			rm.Values["duration_seconds"] = v
		}
		flattenJSON("results", doc["results"], rm.Values)
	}
	flattenStages(doc["stages"], rm.Values)
	if len(rm.Values) == 0 {
		return nil, fmt.Errorf("obs: %s holds no numeric metrics (not a manifest or bench snapshot?)", path)
	}
	return rm, nil
}

// flattenJSON walks nested JSON maps collecting numbers under dotted keys.
func flattenJSON(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case float64:
		out[prefix] = t
	case bool:
		if t {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	case map[string]any:
		for k, sub := range t {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenJSON(key, sub, out)
		}
	}
}

// flattenStages turns the per-stage aggregate list into
// stage.<name>.<field> metrics.
func flattenStages(v any, out map[string]float64) {
	stages, ok := v.([]any)
	if !ok {
		return
	}
	for _, s := range stages {
		st, ok := s.(map[string]any)
		if !ok {
			continue
		}
		name, _ := st["name"].(string)
		if name == "" {
			continue
		}
		for _, field := range []string{"runs", "items", "total_seconds", "p50_seconds", "p95_seconds", "items_per_second"} {
			if val, ok := st[field].(float64); ok {
				out["stage."+name+"."+field] = val
			}
		}
	}
}

// MetricDelta is the comparison of one metric across two runs.
type MetricDelta struct {
	Name string  `json:"name"`
	Old  float64 `json:"old"`
	New  float64 `json:"new"`
	// Delta is New − Old; RelDelta is Delta normalized by |Old|.
	Delta    float64 `json:"delta"`
	RelDelta float64 `json:"rel_delta"`
	// Direction is "higher_better", "lower_better", or "informational".
	Direction string `json:"direction"`
	// Gated metrics fail the comparison when they regress past tolerance.
	Gated     bool    `json:"gated"`
	Tolerance float64 `json:"tolerance,omitempty"`
	Regressed bool    `json:"regressed"`
	// MissingIn is "old" or "new" when the metric exists on one side only.
	MissingIn string `json:"missing_in,omitempty"`
}

// CompareOptions configures the regression gate.
type CompareOptions struct {
	// Tolerance is the default relative tolerance before a gated metric
	// counts as regressed (default 0.05 when zero).
	Tolerance float64
	// MetricTolerance overrides the tolerance per metric name. A key ending
	// in '*' matches every metric with that prefix (e.g. "stage.*" covers
	// all stage aggregates); an exact key always wins over a wildcard, and
	// among wildcards the longest prefix wins.
	MetricTolerance map[string]float64
	// GatePerf also gates the timing metrics (ns_per_op, *_seconds,
	// items_per_second), which are machine-dependent and therefore
	// informational by default.
	GatePerf bool
	// PerfTolerance, when non-zero, replaces Tolerance for the perf metrics
	// gated by GatePerf. Wall-clock numbers are noisier than accuracies, so
	// the benchmark gate runs them with a looser bound without loosening the
	// result metrics. Per-metric MetricTolerance entries still win.
	PerfTolerance float64
}

// metricDirection classifies a metric name into its improvement direction
// and whether it measures wall-clock performance (machine-dependent).
func metricDirection(name string) (dir string, perf bool) {
	base := name
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		base = name[i+1:]
	}
	switch {
	case base == "ns_per_op" || base == "duration_seconds" ||
		strings.HasSuffix(base, "_seconds") || strings.HasSuffix(base, "_ns"):
		// *_ns covers latency metrics reported in nanoseconds
		// (time_to_first_hint_ns and friends).
		return "lower_better", true
	case base == "items_per_second" || strings.HasSuffix(base, "_per_second"):
		// *_per_second covers throughput metrics (traces_per_second,
		// mb_ingest_per_second).
		return "higher_better", true
	case strings.Contains(base, "accuracy") || strings.Contains(base, "-acc-") ||
		strings.Contains(base, "recovered") ||
		strings.Contains(base, "success") || strings.Contains(base, "correct"):
		// "-acc-" covers the benchmark metric convention ("value-acc-%").
		return "higher_better", false
	case strings.Contains(base, "margin") || strings.Contains(base, "snr") ||
		strings.Contains(base, "tvla") || strings.Contains(base, "health"):
		// Attack-quality signals: posterior margin, leakage strength
		// (SNR / TVLA |t| maxima), and template conditioning all degrade
		// downward.
		return "higher_better", false
	case strings.Contains(base, "bikz"):
		// DBDD hardness left after hint integration: a *rising* bikz means
		// the hints got weaker, so lower is better for the attack.
		return "lower_better", false
	default:
		return "informational", false
	}
}

// CompareMetrics diffs two flattened runs metric by metric and reports
// whether any gated metric regressed beyond its tolerance — the heart of
// `revealctl compare`. Deltas are sorted regressions-first, then by name.
func CompareMetrics(prev, curr *RunMetrics, opts CompareOptions) ([]MetricDelta, bool) {
	tol := opts.Tolerance
	if tol == 0 {
		tol = 0.05
	}
	names := map[string]bool{}
	for k := range prev.Values {
		names[k] = true
	}
	for k := range curr.Values {
		names[k] = true
	}
	var deltas []MetricDelta
	regressed := false
	for name := range names {
		dir, perf := metricDirection(name)
		d := MetricDelta{Name: name, Direction: dir}
		d.Gated = dir != "informational" && (!perf || opts.GatePerf)
		if d.Gated {
			d.Tolerance = tol
			if perf && opts.PerfTolerance != 0 {
				d.Tolerance = opts.PerfTolerance
			}
			if t, ok := lookupTolerance(opts.MetricTolerance, name); ok {
				d.Tolerance = t
			}
		}
		a, inOld := prev.Values[name]
		b, inNew := curr.Values[name]
		switch {
		case !inOld:
			d.New, d.MissingIn = b, "old"
		case !inNew:
			d.Old, d.MissingIn = a, "new"
			// A gated metric that vanished is a regression: the gate must
			// not silently pass because a result stopped being reported.
			d.Regressed = d.Gated
		default:
			d.Old, d.New = a, b
			d.Delta = b - a
			d.RelDelta = relDelta(a, b)
			if d.Gated {
				bad := d.RelDelta
				if dir == "higher_better" {
					bad = -bad
				}
				d.Regressed = bad > d.Tolerance
			}
		}
		if d.Regressed {
			regressed = true
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Regressed != deltas[j].Regressed {
			return deltas[i].Regressed
		}
		return deltas[i].Name < deltas[j].Name
	})
	return deltas, regressed
}

// lookupTolerance resolves a metric's tolerance override: exact name first,
// then the longest matching '*'-suffixed prefix pattern.
func lookupTolerance(overrides map[string]float64, name string) (float64, bool) {
	if t, ok := overrides[name]; ok {
		return t, true
	}
	bestLen := -1
	var best float64
	for pattern, t := range overrides {
		if !strings.HasSuffix(pattern, "*") {
			continue
		}
		prefix := pattern[:len(pattern)-1]
		if strings.HasPrefix(name, prefix) && len(prefix) > bestLen {
			bestLen, best = len(prefix), t
		}
	}
	return best, bestLen >= 0
}

// relDelta is (b−a)/|a| with a sign-preserving fallback for a == 0.
func relDelta(a, b float64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return math.Copysign(math.Inf(1), b)
	}
	return (b - a) / math.Abs(a)
}

// FormatDeltas renders the comparison as a human table: gated metrics and
// changed informational ones, regressions flagged.
func FormatDeltas(deltas []MetricDelta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-48s %14s %14s %9s  %s\n", "metric", "old", "new", "Δ%", "status")
	for _, d := range deltas {
		if !d.Gated && d.Delta == 0 && d.MissingIn == "" {
			continue
		}
		status := "ok"
		switch {
		case d.Regressed:
			status = "REGRESSED"
		case d.MissingIn != "":
			status = "missing in " + d.MissingIn
		case !d.Gated:
			status = "info"
		}
		rel := "-"
		if d.MissingIn == "" {
			rel = fmt.Sprintf("%+.2f%%", 100*d.RelDelta)
		}
		fmt.Fprintf(&b, "%-48s %14.6g %14.6g %9s  %s\n", d.Name, d.Old, d.New, rel, status)
	}
	return b.String()
}
