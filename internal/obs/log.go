package obs

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// discardLogger drops every record; returned by Logger() on nil recorders
// so call sites never need a nil check.
var discardLogger = slog.New(discardHandler{})

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// LogOptions configures NewLogger.
type LogOptions struct {
	// Level is the minimum level emitted (default Info).
	Level slog.Level
	// JSON selects JSON records instead of logfmt-style text.
	JSON bool
	// Output receives the records; nil discards them.
	Output io.Writer
}

// NewLogger builds a leveled structured logger. With a nil Output the
// returned logger discards everything.
func NewLogger(opts LogOptions) *slog.Logger {
	if opts.Output == nil {
		return discardLogger
	}
	hopts := &slog.HandlerOptions{Level: opts.Level}
	if opts.JSON {
		return slog.New(slog.NewJSONHandler(opts.Output, hopts))
	}
	return slog.New(slog.NewTextHandler(opts.Output, hopts))
}

// ParseLevel maps the CLI level names (debug, info, warn, error) to slog
// levels; unknown strings fall back to Info.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// LogCtx returns the global structured logger with the trace identity from
// ctx attached as a "trace_id" attribute, so service-layer log lines are
// correlatable with the request that caused them. Without a trace (or with
// observability disabled) it is exactly Log().
func LogCtx(ctx context.Context) *slog.Logger {
	lg := Log()
	if id := TraceIDFrom(ctx); id != "" {
		return lg.With("trace_id", id)
	}
	return lg
}

// fanoutHandler duplicates records to several handlers (console + run-dir
// log file).
type fanoutHandler struct{ handlers []slog.Handler }

func (f fanoutHandler) Enabled(ctx context.Context, l slog.Level) bool {
	for _, h := range f.handlers {
		if h.Enabled(ctx, l) {
			return true
		}
	}
	return false
}

func (f fanoutHandler) Handle(ctx context.Context, r slog.Record) error {
	var first error
	for _, h := range f.handlers {
		if !h.Enabled(ctx, r.Level) {
			continue
		}
		if err := h.Handle(ctx, r.Clone()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (f fanoutHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := make([]slog.Handler, len(f.handlers))
	for i, h := range f.handlers {
		out[i] = h.WithAttrs(attrs)
	}
	return fanoutHandler{handlers: out}
}

func (f fanoutHandler) WithGroup(name string) slog.Handler {
	out := make([]slog.Handler, len(f.handlers))
	for i, h := range f.handlers {
		out[i] = h.WithGroup(name)
	}
	return fanoutHandler{handlers: out}
}

// TeeLogger merges several loggers into one that forwards each record to
// all of them.
func TeeLogger(loggers ...*slog.Logger) *slog.Logger {
	var hs []slog.Handler
	for _, l := range loggers {
		if l == nil || l == discardLogger {
			continue
		}
		hs = append(hs, l.Handler())
	}
	switch len(hs) {
	case 0:
		return discardLogger
	case 1:
		return slog.New(hs[0])
	}
	return slog.New(fanoutHandler{handlers: hs})
}
