package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix of cached handles and by-name lookups to exercise the
			// get-or-create path concurrently.
			c := reg.Counter("reveal_test_total")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				reg.Counter("reveal_test_total").Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := reg.Counter("reveal_test_total").Value(), int64(2*workers*perWorker); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := reg.Histogram("reveal_test_seconds")
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w*perWorker+i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	h := reg.Histogram("reveal_test_seconds")
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	wantSum := 0.0
	for i := 0; i < workers*perWorker; i++ {
		wantSum += float64(i) * 1e-6
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9*wantSum {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	// 1..1000 ms: p50 ≈ 0.5 s, p95 ≈ 0.95 s, p99 ≈ 0.99 s. The base-2
	// buckets are coarse, so allow a factor-2 band around the truth.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-3)
	}
	checks := []struct {
		q, want float64
	}{{0.50, 0.5}, {0.95, 0.95}, {0.99, 0.99}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("Quantile(%g) = %g, want within [%g, %g]",
				c.q, got, c.want/2, c.want*2)
		}
	}
	if got := h.Quantile(0); got != h.Min() {
		t.Errorf("Quantile(0) = %g, want min %g", got, h.Min())
	}
	if got := h.Quantile(1); math.Abs(got-h.Max()) > 1e-9 {
		t.Errorf("Quantile(1) = %g, want max %g", got, h.Max())
	}
	if got, want := h.Mean(), 0.5005; math.Abs(got-want) > 1e-6 {
		t.Errorf("Mean = %g, want %g", got, want)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := newHistogram()
	vals := []float64{1e-6, 3e-6, 1e-4, 2e-3, 0.5, 0.51, 7}
	for _, v := range vals {
		h.Observe(v)
	}
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g (not monotone)", q, got, prev)
		}
		prev = got
	}
}

func TestHistogramEmptyAndNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram should read as zero")
	}
	empty := newHistogram()
	if empty.Quantile(0.99) != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Fatal("empty histogram should read as zero")
	}
	var c *Counter
	c.Inc()
	var g *Gauge
	g.Set(3)
	g.Add(1)
	var reg *Registry
	reg.Counter("x").Add(5)
	reg.Gauge("y").Set(1)
	reg.Histogram("z").Observe(1)
	if err := reg.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("reveal_test_gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`reveal_stage_runs_total{stage="segment"}`).Add(3)
	reg.Gauge("reveal_up").Set(1)
	h := reg.Histogram(`reveal_stage_duration_seconds{stage="segment"}`)
	h.Observe(0.010)
	h.Observe(0.020)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reveal_stage_runs_total counter",
		`reveal_stage_runs_total{stage="segment"} 3`,
		"# TYPE reveal_up gauge",
		"reveal_up 1",
		"# TYPE reveal_stage_duration_seconds summary",
		`reveal_stage_duration_seconds{stage="segment",quantile="0.5"}`,
		`reveal_stage_duration_seconds_sum{stage="segment"} 0.03`,
		`reveal_stage_duration_seconds_count{stage="segment"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Every non-comment line must be `name value` — parseable exposition.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("unparseable metrics line %q", line)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(7)
	reg.Gauge("g").Set(1.25)
	reg.Histogram("h").Observe(0.5)
	snap := reg.Snapshot()
	if snap.Counters["c"] != 7 {
		t.Errorf("counter snapshot = %d, want 7", snap.Counters["c"])
	}
	if snap.Gauges["g"] != 1.25 {
		t.Errorf("gauge snapshot = %g, want 1.25", snap.Gauges["g"])
	}
	if snap.Histograms["h"].Count != 1 || snap.Histograms["h"].Sum != 0.5 {
		t.Errorf("histogram snapshot = %+v", snap.Histograms["h"])
	}
}
