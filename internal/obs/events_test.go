package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEventLogSequenceAndSince checks the cursor contract: Append assigns
// monotonically increasing sequence numbers, Since(after) returns only
// newer events oldest-first, and the returned cursor resumes exactly.
func TestEventLogSequenceAndSince(t *testing.T) {
	l := NewEventLog(64, nil)
	for i := 0; i < 5; i++ {
		ev := l.Append(ServiceEvent{Type: EventJobSubmitted, JobID: fmt.Sprintf("job-%d", i)})
		if ev.Seq != int64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, ev.Seq)
		}
		if ev.Time.IsZero() {
			t.Fatal("append did not stamp a timestamp")
		}
	}
	all, next := l.Since(0, 0)
	if len(all) != 5 || next != 5 {
		t.Fatalf("Since(0) = %d events, next %d; want 5, 5", len(all), next)
	}
	for i, ev := range all {
		if ev.Seq != int64(i+1) {
			t.Fatalf("Since returned out of order: %v", all)
		}
	}
	tail, next := l.Since(3, 0)
	if len(tail) != 2 || tail[0].Seq != 4 || next != 5 {
		t.Fatalf("Since(3) = %+v next %d, want seq 4,5 next 5", tail, next)
	}
	capped, next := l.Since(0, 2)
	if len(capped) != 2 || next != 2 {
		t.Fatalf("Since(0, max=2) = %d events next %d, want 2, 2", len(capped), next)
	}
	// Resuming from the capped cursor yields the remainder with no loss.
	rest, _ := l.Since(next, 0)
	if len(rest) != 3 || rest[0].Seq != 3 {
		t.Fatalf("resume after capped batch = %+v", rest)
	}
	if got, _ := l.Since(99, 0); len(got) != 0 {
		t.Fatalf("cursor ahead of log returned events: %+v", got)
	}
}

// TestEventLogRingOverwrite fills the ring past capacity: the oldest events
// are overwritten and a consumer resuming from an overwritten cursor sees
// the retained tail with a detectable Seq gap.
func TestEventLogRingOverwrite(t *testing.T) {
	l := NewEventLog(16, nil) // 16 is the minimum capacity
	for i := 0; i < 40; i++ {
		l.Append(ServiceEvent{Type: EventJobFinished})
	}
	events, next := l.Since(0, 256)
	if len(events) != 16 {
		t.Fatalf("ring retained %d events, want 16", len(events))
	}
	if events[0].Seq != 25 || events[15].Seq != 40 || next != 40 {
		t.Fatalf("ring window = seq %d..%d next %d, want 25..40 next 40",
			events[0].Seq, events[15].Seq, next)
	}
	if l.LastSeq() != 40 {
		t.Fatalf("LastSeq = %d, want 40", l.LastSeq())
	}
}

// TestEventLogWaitSince exercises the long-poll: a waiter parked on the
// current tail is woken by the next Append, and a context timeout returns
// empty-handed without advancing the cursor.
func TestEventLogWaitSince(t *testing.T) {
	l := NewEventLog(16, nil)
	l.Append(ServiceEvent{Type: EventJobSubmitted})

	type batch struct {
		events []ServiceEvent
		next   int64
	}
	got := make(chan batch, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		events, next := l.WaitSince(ctx, 1, 10)
		got <- batch{events, next}
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	l.Append(ServiceEvent{Type: EventJobClaimed, JobID: "job-1"})
	select {
	case b := <-got:
		if len(b.events) != 1 || b.events[0].Type != EventJobClaimed || b.next != 2 {
			t.Fatalf("woken waiter got %+v next %d", b.events, b.next)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Append did not wake the long-poller")
	}

	// Timeout path: nothing newer than the cursor arrives.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	events, next := l.WaitSince(ctx, l.LastSeq(), 10)
	if len(events) != 0 || next != l.LastSeq() {
		t.Fatalf("timed-out wait returned %+v next %d", events, next)
	}
}

// gateWriter blocks every Write until released, simulating a stuck
// events.jsonl disk so the backpressure test can assert producers never
// block and losses are counted, not silent.
type gateWriter struct {
	release chan struct{}
	mu      sync.Mutex
	buf     bytes.Buffer
}

func (w *gateWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// TestEventLogSinkBackpressure floods the journal while the sink writer is
// wedged: Append must stay non-blocking (the job queue calls it under its
// lock), the overflow must be counted, and after the writer recovers the
// written lines plus the drop counter must account for every event.
func TestEventLogSinkBackpressure(t *testing.T) {
	reg := NewRegistry()
	l := NewEventLog(64, reg)
	w := &gateWriter{release: make(chan struct{})}
	l.AttachSink(w)

	const total = 3000
	start := time.Now()
	for i := 0; i < total; i++ {
		l.Append(ServiceEvent{Type: EventJobSubmitted, JobID: fmt.Sprintf("job-%04d", i)})
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("appends blocked on a stuck sink: %v for %d events", elapsed, total)
	}
	dropped := l.SinkDropped()
	if dropped == 0 {
		t.Fatal("stuck sink dropped nothing after 3000 events (channel should hold ~1024)")
	}

	close(w.release) // the disk recovers
	l.CloseSink()    // drains the queued events, then stops

	w.mu.Lock()
	data := w.buf.Bytes()
	w.mu.Unlock()
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var ev ServiceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("sink line %d is not valid JSON: %v", lines+1, err)
		}
		lines++
	}
	if int64(lines)+dropped != total {
		t.Fatalf("written %d + dropped %d != %d appended", lines, dropped, total)
	}
	if got := reg.Counter(MetricServiceEvents).Value(); got != total {
		t.Fatalf("%s = %d, want %d", MetricServiceEvents, got, total)
	}
	if got := reg.Counter(MetricServiceEventsDropped).Value(); got != dropped {
		t.Fatalf("%s = %d, want %d", MetricServiceEventsDropped, got, dropped)
	}
}

// TestEventLogNilSafe checks a nil *EventLog ignores everything — the shape
// the whole service relies on when observability is disabled.
func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Append(ServiceEvent{Type: EventDrainStarted})
	if ev, next := l.Since(0, 10); ev != nil || next != 0 {
		t.Fatalf("nil Since = %v, %d", ev, next)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if ev, next := l.WaitSince(ctx, 5, 10); ev != nil || next != 5 {
		t.Fatalf("nil WaitSince = %v, %d", ev, next)
	}
	if l.LastSeq() != 0 || l.SinkDropped() != 0 {
		t.Fatal("nil log reported nonzero state")
	}
	l.AttachSink(io.Discard)
	l.CloseSink()

	// A recorder without EventCapacity has no journal; Emit is a no-op.
	rec := New(Options{})
	if rec.Events() != nil {
		t.Fatal("recorder without EventCapacity exposed an event log")
	}
	rec.Emit(ServiceEvent{Type: EventCacheFill})
	var nilRec *Recorder
	nilRec.Emit(ServiceEvent{Type: EventCacheFill})
}

// TestTraceContextRoundTrip checks the context plumbing used to carry the
// request identity from the HTTP layer into the pipeline.
func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: "abc123", SpanID: "s1"}
	ctx := WithTraceContext(context.Background(), tc)
	if got := TraceContextFrom(ctx); got != tc {
		t.Fatalf("round trip = %+v, want %+v", got, tc)
	}
	if TraceIDFrom(ctx) != "abc123" {
		t.Fatalf("TraceIDFrom = %q", TraceIDFrom(ctx))
	}
	if got := TraceContextFrom(context.Background()); got.Valid() {
		t.Fatalf("empty context carried a trace: %+v", got)
	}
	if TraceIDFrom(nil) != "" { //nolint:staticcheck // nil-safety is the contract
		t.Fatal("nil context returned a trace ID")
	}
}

// TestNewTraceID checks minted IDs are well-formed and unique.
func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if len(id) != 16 || !ValidTraceID(id) {
			t.Fatalf("minted ID %q is malformed", id)
		}
		if strings.ToLower(id) != id {
			t.Fatalf("minted ID %q is not lowercase hex", id)
		}
		if seen[id] {
			t.Fatalf("minted ID %q repeated", id)
		}
		seen[id] = true
	}
}

// TestValidTraceID pins the accepted charset for externally supplied IDs.
func TestValidTraceID(t *testing.T) {
	cases := []struct {
		id string
		ok bool
	}{
		{"abc123", true},
		{"Trace-ID_1.2", true},
		{strings.Repeat("a", 64), true},
		{"", false},
		{strings.Repeat("a", 65), false},
		{"has space", false},
		{"semi;colon", false},
		{"newline\n", false},
		{`quote"`, false},
	}
	for _, c := range cases {
		if got := ValidTraceID(c.id); got != c.ok {
			t.Errorf("ValidTraceID(%q) = %v, want %v", c.id, got, c.ok)
		}
	}
}
