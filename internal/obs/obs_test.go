package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	SetGlobal(nil)
	s := StartSpan("segment")
	if s != nil {
		t.Fatal("disabled observability must hand out nil spans")
	}
	s.AddItems(10)
	if d := s.End(); d != 0 {
		t.Fatalf("nil span End = %v, want 0", d)
	}
	if Enabled() {
		t.Fatal("Enabled() must be false with a nil global recorder")
	}
	Log().Info("goes nowhere")
}

func TestSpanRecordsStageMetrics(t *testing.T) {
	rec := New(Options{})
	sp := rec.StartSpan("segment")
	sp.AddItems(1024)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration = %v, want > 0", d)
	}
	stats := rec.StageStats()
	if len(stats) != 1 {
		t.Fatalf("got %d stages, want 1", len(stats))
	}
	st := stats[0]
	if st.Name != "segment" || st.Runs != 1 || st.Items != 1024 {
		t.Fatalf("stage stats = %+v", st)
	}
	if st.TotalSeconds <= 0 || st.P50Seconds <= 0 || st.ItemsPerSecond <= 0 {
		t.Fatalf("stage timings not recorded: %+v", st)
	}
	if st.Active != 0 {
		t.Fatalf("active = %d after End, want 0", st.Active)
	}
}

func TestSpanConcurrent(t *testing.T) {
	rec := New(Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := rec.StartSpan("classify")
				sp.AddItems(2)
				sp.End()
			}
		}()
	}
	wg.Wait()
	stats := rec.StageStats()
	if len(stats) != 1 || stats[0].Runs != 1600 || stats[0].Items != 3200 {
		t.Fatalf("stage stats = %+v", stats)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	cfg, _ := json.Marshal(map[string]int{"profile_traces": 40})
	m := &Manifest{
		Tool:            "revealctl",
		Command:         "attack",
		Args:            []string{"-seed", "1"},
		Seed:            1,
		GitDescribe:     "abc123-dirty",
		GoVersion:       "go1.22",
		StartTime:       time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		EndTime:         time.Date(2026, 8, 5, 12, 3, 0, 0, time.UTC),
		DurationSeconds: 180,
		Config:          cfg,
		Stages: []StageStats{{
			Name: "segment", Runs: 2, Items: 2050,
			TotalSeconds: 0.4, MinSeconds: 0.1, MaxSeconds: 0.3,
			P50Seconds: 0.2, P95Seconds: 0.3, P99Seconds: 0.3,
			ItemsPerSecond: 5125,
		}},
		Results: map[string]any{"value_accuracy": 0.97},
		Metrics: RegistrySnapshot{Counters: map[string]int64{"c": 1}},
	}
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	// The embedded raw config is re-indented on write; compare it
	// semantically, everything else byte-for-byte.
	var gotCfg, wantCfg map[string]int
	if err := json.Unmarshal(got.Config, &gotCfg); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(m.Config, &wantCfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCfg, wantCfg) {
		t.Fatalf("config round trip mismatch: %v vs %v", gotCfg, wantCfg)
	}
	got.Config, m.Config = nil, nil
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestStartRunFinishWritesArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	prev := Global()
	run, err := StartRun(dir, RunOptions{
		Tool: "obs_test", Command: "selftest", Seed: 42,
		Config: map[string]string{"mode": "test"}, Quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if Global() != run.Recorder {
		t.Fatal("StartRun must install the run recorder globally")
	}
	sp := StartSpan("segment")
	sp.AddItems(5)
	sp.End()
	run.SetResult("value_accuracy", 0.5)
	if err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	if Global() != prev {
		t.Fatal("Finish must restore the previous global recorder")
	}

	m, err := ReadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "obs_test" || m.Seed != 42 || m.DurationSeconds < 0 {
		t.Fatalf("manifest = %+v", m)
	}
	if len(m.Stages) != 1 || m.Stages[0].Name != "segment" || m.Stages[0].Items != 5 {
		t.Fatalf("manifest stages = %+v", m.Stages)
	}
	if m.Results["value_accuracy"] != 0.5 {
		t.Fatalf("manifest results = %+v", m.Results)
	}
	var cfg map[string]string
	if err := json.Unmarshal(m.Config, &cfg); err != nil || cfg["mode"] != "test" {
		t.Fatalf("manifest config = %s (%v)", m.Config, err)
	}

	metrics, err := os.ReadFile(filepath.Join(dir, "metrics.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), `reveal_stage_runs_total{stage="segment"} 1`) {
		t.Fatalf("metrics.txt missing stage counter:\n%s", metrics)
	}
	if _, err := os.Stat(filepath.Join(dir, "run.log")); err != nil {
		t.Fatalf("run.log missing: %v", err)
	}
}

func TestMetricsServerEndpoints(t *testing.T) {
	rec := New(Options{})
	sp := rec.StartSpan("template")
	sp.AddItems(3)
	sp.End()
	srv, err := ServeMetrics(rec, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, `reveal_stage_runs_total{stage="template"} 1`) {
		t.Errorf("/metrics missing stage counter:\n%s", out)
	}
	var prog progressReport
	if err := json.Unmarshal([]byte(get("/progress")), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if len(prog.Stages) != 1 || prog.Stages[0].Name != "template" {
		t.Errorf("/progress stages = %+v", prog.Stages)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	var health struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(get("/healthz")), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if health.Status != "ok" || health.UptimeSeconds < 0 {
		t.Errorf("/healthz = %+v", health)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "WARN": "WARN",
		"error": "ERROR", "bogus": "INFO", "": "INFO",
	} {
		if got := ParseLevel(in).String(); got != want {
			t.Errorf("ParseLevel(%q) = %s, want %s", in, got, want)
		}
	}
}
