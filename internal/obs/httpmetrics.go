package obs

import (
	"net/http"
	"time"
)

// HTTP metric names. Route labels come from the InstrumentHandler route
// function — a bounded set of route templates, never raw paths, so the
// label space cannot explode on crafted URLs.
const (
	MetricHTTPRequests  = "reveal_http_requests_total"           // {route="..."}
	MetricHTTPResponses = "reveal_http_responses_total"          // {code="2xx|3xx|4xx|5xx"}
	MetricHTTPLatency   = "reveal_http_request_duration_seconds" // {route="..."}
	MetricHTTPInflight  = "reveal_http_inflight_requests"
)

// maxHTTPRoutes caps the route label cardinality; the route function
// already normalizes to templates, so this is a belt-and-braces bound.
const maxHTTPRoutes = 64

// statusRecorder captures the response status code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher so long-poll/streaming handlers behind the
// middleware can still flush incremental responses.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// httpMetrics is the pre-registered metric family used by the middleware;
// built once per recorder wrapping, so the per-request path is map reads
// and atomic adds only.
type httpMetrics struct {
	requests *CounterVec   // by route
	byCode   *CounterVec   // by status class ("2xx", "4xx", …)
	latency  *HistogramVec // by route
	inflight *Gauge
}

func newHTTPMetrics(reg *Registry) *httpMetrics {
	if reg == nil {
		return nil
	}
	return &httpMetrics{
		requests: reg.CounterVec(MetricHTTPRequests, "route", maxHTTPRoutes),
		byCode:   reg.CounterVec(MetricHTTPResponses, "code", 8),
		latency:  reg.HistogramVec(MetricHTTPLatency, "route", maxHTTPRoutes),
		inflight: reg.Gauge(MetricHTTPInflight),
	}
}

func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// InstrumentHandler wraps h with the service-grade HTTP middleware:
//
//   - Trace identity: an incoming X-Reveal-Trace-Id header is validated and
//     adopted (else a fresh ID is minted), placed on the request context for
//     the handler chain to propagate, and echoed on the response so clients
//     can correlate.
//   - Labeled metrics: per-route request counters and latency histograms,
//     per-status-class counters, and an inflight gauge, all on rec's
//     registry and therefore on the existing /metrics exposition.
//
// route maps a request to its bounded route template (e.g.
// "/api/v1/campaigns/{id}"); nil uses the URL path verbatim (only safe for
// fixed-path muxes like the observability endpoints).
func InstrumentHandler(rec *Recorder, route func(*http.Request) string, h http.Handler) http.Handler {
	m := newHTTPMetrics(rec.Registry())
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc := TraceContext{TraceID: r.Header.Get(TraceHeader)}
		if !ValidTraceID(tc.TraceID) {
			tc.TraceID = NewTraceID()
		}
		w.Header().Set(TraceHeader, tc.TraceID)
		r = r.WithContext(WithTraceContext(r.Context(), tc))

		rt := r.URL.Path
		if route != nil {
			rt = route(r)
		}
		start := time.Now()
		if m != nil {
			m.inflight.Add(1)
		}
		sw := &statusRecorder{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		if m != nil {
			m.inflight.Add(-1)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			m.requests.With(rt).Inc()
			m.byCode.With(statusClass(sw.status)).Inc()
			m.latency.With(rt).Observe(time.Since(start).Seconds())
		}
	})
}
