package obs

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime/metrics"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Runtime-telemetry metric families exported by the Profiler (gauges
// refreshed on every capture cycle).
const (
	MetricRuntimeGoroutines  = "reveal_runtime_goroutines"
	MetricRuntimeHeapBytes   = "reveal_runtime_heap_bytes"
	MetricRuntimeGCPauseP50  = "reveal_runtime_gc_pause_p50_seconds"
	MetricRuntimeGCPauseMax  = "reveal_runtime_gc_pause_max_seconds"
	MetricRuntimeSchedLatP50 = "reveal_runtime_sched_latency_p50_seconds"
	MetricRuntimeSchedLatP99 = "reveal_runtime_sched_latency_p99_seconds"
	MetricRuntimeGCCycles    = "reveal_runtime_gc_cycles_total"
	// MetricProfilesCaptured counts completed CPU+heap capture cycles.
	MetricProfilesCaptured = "reveal_profiles_captured_total"
)

// ProfilerOptions configures the continuous-profiling sidecar.
type ProfilerOptions struct {
	// Dir receives the pprof files (cpu-NNNNNN.pprof / heap-NNNNNN.pprof);
	// created when missing. Required.
	Dir string
	// Interval is the capture period for the Start loop (default 5m).
	Interval time.Duration
	// CPUDuration is how long each CPU profile samples (default 1s; capped
	// to Interval/2 so consecutive cycles never overlap).
	CPUDuration time.Duration
	// MaxProfiles bounds how many profiles of each type are retained; the
	// oldest are deleted past the cap (default 8).
	MaxProfiles int
	// Registry receives the runtime metric families (nil uses the global
	// recorder's registry at sample time).
	Registry *Registry
}

// Profiler is the continuous-profiling sidecar: on every cycle it refreshes
// the reveal_runtime_* gauges from runtime/metrics and captures one CPU and
// one heap pprof profile into Dir under a retention cap. A capture that
// loses the CPU-profiler race (e.g. an operator hitting /debug/pprof/profile
// at the same moment) skips the CPU file for that cycle instead of failing.
type Profiler struct {
	opts ProfilerOptions

	mu  sync.Mutex
	seq int

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewProfiler validates the options and prepares the profile directory.
// Call Start for the periodic loop, or CollectOnce to drive cycles
// manually (tests, one-shot captures).
func NewProfiler(opts ProfilerOptions) (*Profiler, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("obs: ProfilerOptions.Dir is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Minute
	}
	if opts.CPUDuration <= 0 {
		opts.CPUDuration = time.Second
	}
	if opts.CPUDuration > opts.Interval/2 {
		opts.CPUDuration = opts.Interval / 2
	}
	if opts.MaxProfiles <= 0 {
		opts.MaxProfiles = 8
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating profile dir: %w", err)
	}
	p := &Profiler{
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// Resume the sequence after the newest existing profile so restarts
	// never overwrite retained files.
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		var n int
		name := e.Name()
		if _, err := fmt.Sscanf(name, "cpu-%d.pprof", &n); err == nil && n > p.seq {
			p.seq = n
		}
		if _, err := fmt.Sscanf(name, "heap-%d.pprof", &n); err == nil && n > p.seq {
			p.seq = n
		}
	}
	return p, nil
}

// Start launches the periodic capture loop (at most once).
func (p *Profiler) Start() {
	p.startOnce.Do(func() {
		go func() {
			defer close(p.done)
			ticker := time.NewTicker(p.opts.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if _, _, err := p.CollectOnce(); err != nil {
						Log().Warn("profile capture failed", "error", err)
					}
				case <-p.stop:
					return
				}
			}
		}()
	})
}

// Close stops the capture loop. Safe to call without Start.
func (p *Profiler) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.startOnce.Do(func() { close(p.done) })
	<-p.done
}

// CollectOnce runs one capture cycle: refresh the runtime gauges, write one
// heap profile, sample one CPU profile, and prune past the retention cap.
// It returns the written file paths; cpuPath is empty when the CPU profiler
// was already claimed elsewhere.
func (p *Profiler) CollectOnce() (cpuPath, heapPath string, err error) {
	p.SampleRuntimeMetrics()

	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()

	heapPath = filepath.Join(p.opts.Dir, fmt.Sprintf("heap-%06d.pprof", seq))
	hf, err := os.Create(heapPath)
	if err != nil {
		return "", "", fmt.Errorf("obs: creating heap profile: %w", err)
	}
	werr := pprof.WriteHeapProfile(hf)
	if cerr := hf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", "", fmt.Errorf("obs: writing heap profile: %w", werr)
	}

	cpuPath = filepath.Join(p.opts.Dir, fmt.Sprintf("cpu-%06d.pprof", seq))
	cf, err := os.Create(cpuPath)
	if err != nil {
		return "", heapPath, fmt.Errorf("obs: creating cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		// Someone else (e.g. /debug/pprof/profile) holds the CPU profiler;
		// skip this cycle's CPU file rather than failing the loop.
		cf.Close()
		_ = os.Remove(cpuPath)
		cpuPath = ""
	} else {
		time.Sleep(p.opts.CPUDuration)
		pprof.StopCPUProfile()
		if err := cf.Close(); err != nil {
			return "", heapPath, fmt.Errorf("obs: closing cpu profile: %w", err)
		}
	}

	p.prune()
	p.registry().Counter(MetricProfilesCaptured).Inc()
	return cpuPath, heapPath, nil
}

func (p *Profiler) registry() *Registry {
	if p.opts.Registry != nil {
		return p.opts.Registry
	}
	return Global().Registry()
}

// prune deletes the oldest profiles of each type past MaxProfiles.
func (p *Profiler) prune() {
	entries, err := os.ReadDir(p.opts.Dir)
	if err != nil {
		return
	}
	byType := map[string][]string{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".pprof") {
			continue
		}
		switch {
		case strings.HasPrefix(name, "cpu-"):
			byType["cpu"] = append(byType["cpu"], name)
		case strings.HasPrefix(name, "heap-"):
			byType["heap"] = append(byType["heap"], name)
		}
	}
	for _, names := range byType {
		sort.Strings(names)
		for len(names) > p.opts.MaxProfiles {
			_ = os.Remove(filepath.Join(p.opts.Dir, names[0]))
			names = names[1:]
		}
	}
}

// runtimeSampleNames are the runtime/metrics series the sidecar exports.
// All of them exist on every Go release the module supports; unknown names
// degrade to KindBad samples that are simply skipped.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// SampleRuntimeMetrics refreshes the reveal_runtime_* gauges from the
// runtime/metrics package: goroutine count, live heap bytes, GC cycle
// count, and the GC-pause / scheduler-latency distributions condensed to
// p50/p99/max.
func (p *Profiler) SampleRuntimeMetrics() {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	reg := p.registry()
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				reg.Gauge(MetricRuntimeGoroutines).Set(float64(s.Value.Uint64()))
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				reg.Gauge(MetricRuntimeHeapBytes).Set(float64(s.Value.Uint64()))
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				reg.Gauge(MetricRuntimeGCCycles).Set(float64(s.Value.Uint64()))
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				reg.Gauge(MetricRuntimeGCPauseP50).Set(histQuantile(h, 0.50))
				reg.Gauge(MetricRuntimeGCPauseMax).Set(histMax(h))
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				reg.Gauge(MetricRuntimeSchedLatP50).Set(histQuantile(h, 0.50))
				reg.Gauge(MetricRuntimeSchedLatP99).Set(histQuantile(h, 0.99))
			}
		}
	}
}

// histQuantile reads an approximate quantile from a runtime/metrics
// histogram: the midpoint of the bucket holding the q-th observation.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if c > 0 && cum > target {
			return bucketMid(h, i)
		}
	}
	return bucketMid(h, len(h.Counts)-1)
}

// histMax returns the upper edge of the highest non-empty bucket.
func histMax(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			return bucketMid(h, i)
		}
	}
	return 0
}

// bucketMid is the midpoint of bucket i, clamping the ±Inf edge buckets to
// their finite side.
func bucketMid(h *metrics.Float64Histogram, i int) float64 {
	lo, hi := h.Buckets[i], h.Buckets[i+1]
	if math.IsInf(lo, -1) {
		lo = hi
	}
	if math.IsInf(hi, 1) {
		hi = lo
	}
	return (lo + hi) / 2
}
