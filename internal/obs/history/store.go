package history

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store defaults; see Options.
const (
	DefaultMaxSegmentBytes = 1 << 20
	DefaultMaxSegments     = 8
)

// Options configures a Store.
type Options struct {
	// Dir is the store directory (created when missing). Required.
	Dir string
	// MaxSegmentBytes rotates the active segment once it would exceed this
	// size (default 1 MiB).
	MaxSegmentBytes int64
	// MaxSegments bounds the number of on-disk segments; the oldest segment
	// (and its records) is deleted once the cap is exceeded (default 8).
	MaxSegments int
	// SyncEvery fsyncs the active segment after every N appends (0 syncs
	// only on rotation and Close — crash tolerance comes from the replay,
	// not from per-record durability).
	SyncEvery int
}

func (o *Options) normalize() {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = DefaultMaxSegments
	}
}

// segment is one on-disk JSONL file plus how many live records it holds
// (the in-memory index drops whole segments as retention deletes them).
type segment struct {
	index int
	path  string
	count int
	size  int64
}

// Store is the append-only history store: JSONL segment files on disk, the
// full retention window mirrored in a sorted in-memory index. Safe for
// concurrent use.
type Store struct {
	opts Options

	mu       sync.Mutex
	segments []segment
	records  []RunRecord // sorted by Seq; aligned with segments front-to-back
	seq      int64
	active   *os.File
	pending  int // appends since the last fsync
	skipped  int // malformed lines ignored during Open
	closed   bool
}

// Open loads (or creates) the store in opts.Dir, replaying every segment
// into the in-memory index. Replay is crash-tolerant: malformed lines (a
// torn tail from a crashed writer) are skipped and counted, and a segment
// with a torn tail is sealed — appends go to a fresh segment so the torn
// bytes can never corrupt a later record boundary.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("history: Options.Dir is required")
	}
	opts.normalize()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: creating %s: %w", opts.Dir, err)
	}
	s := &Store{opts: opts}

	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("history: reading %s: %w", opts.Dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".jsonl") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	lastClean := true
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(name, "seg-%d.jsonl", &idx); err != nil {
			continue
		}
		path := filepath.Join(opts.Dir, name)
		count, size, clean, err := s.replaySegment(path)
		if err != nil {
			return nil, err
		}
		s.segments = append(s.segments, segment{index: idx, path: path, count: count, size: size})
		lastClean = clean
	}
	sort.Slice(s.records, func(i, j int) bool { return s.records[i].Seq < s.records[j].Seq })
	for _, r := range s.records {
		if r.Seq > s.seq {
			s.seq = r.Seq
		}
	}
	// Reopen the newest segment for appending only when its tail is intact;
	// otherwise (or with no segments at all) the next Append starts fresh.
	if n := len(s.segments); n > 0 && lastClean && s.segments[n-1].size < opts.MaxSegmentBytes {
		f, err := os.OpenFile(s.segments[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("history: reopening %s: %w", s.segments[n-1].path, err)
		}
		s.active = f
	}
	return s, nil
}

// replaySegment loads one segment file into the index. clean reports
// whether every byte of the file belonged to a well-formed record line.
func (s *Store) replaySegment(path string) (count int, size int64, clean bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("history: reading %s: %w", path, err)
	}
	clean = true
	for len(data) > 0 {
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		var line []byte
		if nl < 0 {
			line, data = data, nil
			clean = false // torn tail: the writer died mid-line
		} else {
			line, data = data[:nl], data[nl+1:]
		}
		if len(line) == 0 {
			continue
		}
		var rec RunRecord
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.Seq <= 0 {
			s.skipped++
			clean = clean && nl >= 0 // a malformed interior line still seals nothing
			continue
		}
		s.records = append(s.records, rec)
		count++
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, 0, false, err
	}
	return count, fi.Size(), clean, nil
}

// Append stamps rec with the next sequence number (and the current time
// when unset), writes it to the active segment, and indexes it. Rotation
// and retention enforcement happen inline.
func (s *Store) Append(rec RunRecord) (RunRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return rec, fmt.Errorf("history: store is closed")
	}
	s.seq++
	rec.Seq = s.seq
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		s.seq--
		return rec, fmt.Errorf("history: encoding record: %w", err)
	}
	line = append(line, '\n')

	if s.active != nil && s.tailSize()+int64(len(line)) > s.opts.MaxSegmentBytes && s.tailSize() > 0 {
		if err := s.rotateLocked(); err != nil {
			return rec, err
		}
	}
	if s.active == nil {
		if err := s.openSegmentLocked(); err != nil {
			return rec, err
		}
	}
	if _, err := s.active.Write(line); err != nil {
		return rec, fmt.Errorf("history: appending to %s: %w", s.segments[len(s.segments)-1].path, err)
	}
	tail := &s.segments[len(s.segments)-1]
	tail.size += int64(len(line))
	tail.count++
	s.records = append(s.records, rec)
	if s.opts.SyncEvery > 0 {
		s.pending++
		if s.pending >= s.opts.SyncEvery {
			s.pending = 0
			_ = s.active.Sync()
		}
	}
	s.enforceRetentionLocked()
	return rec, nil
}

func (s *Store) tailSize() int64 {
	if len(s.segments) == 0 {
		return 0
	}
	return s.segments[len(s.segments)-1].size
}

// openSegmentLocked starts a fresh segment after the newest existing one.
func (s *Store) openSegmentLocked() error {
	next := 1
	if n := len(s.segments); n > 0 {
		next = s.segments[n-1].index + 1
	}
	path := filepath.Join(s.opts.Dir, fmt.Sprintf("seg-%08d.jsonl", next))
	// O_EXCL: a fresh segment must not already exist — an existing file
	// would mean two stores share the directory.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("history: creating %s: %w", path, err)
	}
	s.active = f
	s.segments = append(s.segments, segment{index: next, path: path})
	return nil
}

// rotateLocked seals the active segment (fsync + close).
func (s *Store) rotateLocked() error {
	if s.active == nil {
		return nil
	}
	_ = s.active.Sync()
	err := s.active.Close()
	s.active = nil
	s.pending = 0
	if err != nil {
		return fmt.Errorf("history: sealing segment: %w", err)
	}
	return nil
}

// enforceRetentionLocked deletes whole oldest segments past MaxSegments,
// dropping their records from the index.
func (s *Store) enforceRetentionLocked() {
	for len(s.segments) > s.opts.MaxSegments {
		old := s.segments[0]
		s.segments = s.segments[1:]
		if old.count > 0 && old.count <= len(s.records) {
			s.records = s.records[old.count:]
		}
		_ = os.Remove(old.path)
	}
}

// Query selects records oldest-first.
type Query struct {
	// Kind and Tenant filter when non-empty.
	Kind   string `json:"kind,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// AfterSeq returns only records with Seq > AfterSeq (the cursor).
	AfterSeq int64 `json:"after_seq,omitempty"`
	// Limit bounds the page size (default 100, max 1000).
	Limit int `json:"limit,omitempty"`
}

// QueryResult is one page of records plus the cursor to resume from.
type QueryResult struct {
	Records []RunRecord `json:"records"`
	// NextAfter is the Seq of the last returned record (pass it back as
	// AfterSeq to fetch the next page); equal to the request cursor when
	// the page is empty.
	NextAfter int64 `json:"next_after"`
	// Total counts every retained record matching the filters, ignoring
	// the cursor and limit.
	Total int `json:"total"`
}

// Query returns matching records oldest-first with cursor pagination.
func (s *Store) Query(q Query) QueryResult {
	limit := q.Limit
	if limit <= 0 {
		limit = 100
	}
	if limit > 1000 {
		limit = 1000
	}
	res := QueryResult{NextAfter: q.AfterSeq}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Records are Seq-sorted: skip straight to the cursor.
	start := sort.Search(len(s.records), func(i int) bool { return s.records[i].Seq > q.AfterSeq })
	for i := 0; i < len(s.records); i++ {
		r := &s.records[i]
		if q.Kind != "" && r.Kind != q.Kind {
			continue
		}
		if q.Tenant != "" && r.Tenant != q.Tenant {
			continue
		}
		res.Total++
		if i >= start && len(res.Records) < limit {
			res.Records = append(res.Records, *r)
		}
	}
	if n := len(res.Records); n > 0 {
		res.NextAfter = res.Records[n-1].Seq
	}
	return res
}

// Recent returns the newest n records for kind/tenant ("" matches all),
// oldest-first — the window the aggregation engine and watchdog consume.
func (s *Store) Recent(kind, tenant string, n int) []RunRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []RunRecord
	for i := len(s.records) - 1; i >= 0 && (n <= 0 || len(out) < n); i-- {
		r := &s.records[i]
		if kind != "" && r.Kind != kind {
			continue
		}
		if tenant != "" && r.Tenant != tenant {
			continue
		}
		out = append(out, *r)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Kinds returns the distinct campaign kinds present, sorted.
func (s *Store) Kinds() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := map[string]bool{}
	for i := range s.records {
		set[s.records[i].Kind] = true
	}
	kinds := make([]string, 0, len(set))
	for k := range set {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// Len reports the number of retained records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// LastSeq reports the most recently assigned sequence number.
func (s *Store) LastSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Skipped reports how many malformed lines the Open replay ignored.
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Close fsyncs and closes the active segment. The store rejects appends
// afterwards; queries keep working on the in-memory index.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active == nil {
		return nil
	}
	_ = s.active.Sync()
	err := s.active.Close()
	s.active = nil
	return err
}
