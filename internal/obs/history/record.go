// Package history is the service's quality memory: a crash-tolerant,
// append-only on-disk store of compact per-job run records (JSONL segments
// with an in-memory index and size/retention caps), an aggregation engine
// over them (count, mean, quantiles, EWMA per campaign kind), and a
// direction-aware drift watchdog that compares fresh aggregates against
// pinned baselines using the same tolerance semantics as the
// `revealctl compare` regression gate.
//
// The attack's results are statistical — per-coefficient accuracy, posterior
// margin, SNR/TVLA maxima, DBDD bikz — and a classifier can degrade quietly
// across thousands of campaigns while every individual run still "works".
// The store keeps the trajectory; the watchdog turns it into journal events
// and a counter the moment it bends the wrong way.
package history

import "time"

// RunRecord is one completed job's compact quality summary — the unit the
// store persists and the aggregation engine consumes. Records are small on
// purpose (a few hundred bytes): the store holds its whole retention window
// in memory.
type RunRecord struct {
	// Seq is the store-assigned monotonic sequence number; /api/v1/history
	// cursors paginate on it.
	Seq int64 `json:"seq"`
	// Time is the record timestamp (UTC), stamped by Append when zero.
	Time time.Time `json:"time"`
	// JobID and TraceID tie the record back to the job's run directory and
	// the originating request's journal events.
	JobID   string `json:"job_id,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// Kind is the campaign kind ("attack", "diagnose", ...); aggregation
	// and drift detection group on it.
	Kind string `json:"kind"`
	// Tenant attributes the run to a client identity ("" = untagged).
	Tenant string `json:"tenant,omitempty"`
	// Seed is the campaign seed (recorded so drifting runs can be replayed).
	Seed uint64 `json:"seed,omitempty"`
	// ElapsedSeconds is the job's successful-attempt wall clock.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	// Stages holds per-stage durations in seconds (queue_wait_seconds,
	// profile_seconds, attack_seconds, ...). Aggregated under "stage." keys
	// so the *_seconds suffix keeps them direction-classified as timing.
	Stages map[string]float64 `json:"stages,omitempty"`
	// Metrics holds the quality numbers (value_accuracy, mean_margin,
	// snr_max, tvla_max, hinted_bikz, template_health, ...). Names follow
	// the obs.CompareMetrics direction conventions so the watchdog knows
	// which way each one is allowed to move.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Values flattens the record into the dotted metric namespace shared with
// obs.RunMetrics: quality metrics keep their bare names, stage durations
// are prefixed "stage.", and the job wall clock becomes elapsed_seconds.
func (r *RunRecord) Values() map[string]float64 {
	out := make(map[string]float64, len(r.Metrics)+len(r.Stages)+1)
	for k, v := range r.Metrics {
		out[k] = v
	}
	for k, v := range r.Stages {
		out["stage."+k] = v
	}
	if r.ElapsedSeconds > 0 {
		out["elapsed_seconds"] = r.ElapsedSeconds
	}
	return out
}
