package history

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testRecord(kind, tenant string, acc float64) RunRecord {
	return RunRecord{
		Kind: kind, Tenant: tenant, Seed: 1,
		ElapsedSeconds: 0.25,
		Stages:         map[string]float64{"attack_seconds": 0.2},
		Metrics:        map[string]float64{"value_accuracy": acc, "mean_margin": acc / 2},
	}
}

func TestStoreAppendQueryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		kind := "attack"
		if i%3 == 0 {
			kind = "diagnose"
		}
		rec, err := s.Append(testRecord(kind, "ci", 0.9))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Seq != int64(i+1) {
			t.Fatalf("seq = %d, want %d", rec.Seq, i+1)
		}
		if rec.Time.IsZero() {
			t.Fatal("Append must stamp Time")
		}
	}
	res := s.Query(Query{Kind: "attack"})
	if res.Total != 6 || len(res.Records) != 6 {
		t.Fatalf("attack query: total %d, page %d, want 6/6", res.Total, len(res.Records))
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Seq <= res.Records[i-1].Seq {
			t.Fatal("records must be oldest-first")
		}
	}
	if got := s.Kinds(); len(got) != 2 || got[0] != "attack" || got[1] != "diagnose" {
		t.Fatalf("Kinds = %v", got)
	}

	// Cursor pagination: two pages of 3 cover all 6 attack records.
	page1 := s.Query(Query{Kind: "attack", Limit: 3})
	if len(page1.Records) != 3 || page1.NextAfter != page1.Records[2].Seq {
		t.Fatalf("page1 = %d records, next %d", len(page1.Records), page1.NextAfter)
	}
	page2 := s.Query(Query{Kind: "attack", AfterSeq: page1.NextAfter, Limit: 10})
	if len(page2.Records) != 3 {
		t.Fatalf("page2 = %d records, want 3", len(page2.Records))
	}
	if page2.Records[0].Seq <= page1.Records[2].Seq {
		t.Fatal("page2 must start after page1's cursor")
	}
	empty := s.Query(Query{Kind: "attack", AfterSeq: page2.NextAfter})
	if len(empty.Records) != 0 || empty.NextAfter != page2.NextAfter {
		t.Fatalf("exhausted cursor returned %d records, next %d", len(empty.Records), empty.NextAfter)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Append(testRecord("attack", "", 0.8+float64(i)/100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 || s2.LastSeq() != 5 {
		t.Fatalf("reopened store: len %d lastSeq %d, want 5/5", s2.Len(), s2.LastSeq())
	}
	// Sequence numbering continues where the previous incarnation stopped.
	rec, err := s2.Append(testRecord("attack", "", 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 6 {
		t.Fatalf("post-reopen seq = %d, want 6", rec.Seq)
	}
	got := s2.Query(Query{}).Records
	if got[0].Metrics["value_accuracy"] != 0.8 {
		t.Fatalf("oldest record corrupted: %+v", got[0])
	}
}

func TestStoreTornTailIsSkippedAndSealed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append(testRecord("attack", "", 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a torn, newline-less JSON fragment.
	seg := filepath.Join(dir, "seg-00000001.jsonl")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"kind":"att`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("len after torn tail = %d, want 3", s2.Len())
	}
	if s2.Skipped() != 1 {
		t.Fatalf("skipped = %d, want 1", s2.Skipped())
	}
	// The torn segment is sealed: the next append must open a new segment,
	// leaving the torn bytes isolated.
	if _, err := s2.Append(testRecord("attack", "", 0.9)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-00000002.jsonl")); err != nil {
		t.Fatalf("append after torn tail must start a fresh segment: %v", err)
	}
	if got := s2.Query(Query{}).Total; got != 4 {
		t.Fatalf("total after reopen+append = %d, want 4", got)
	}
}

func TestStoreRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force constant rotation; MaxSegments 3 forces drops.
	s, err := Open(Options{Dir: dir, MaxSegmentBytes: 512, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const total = 200
	for i := 0; i < total; i++ {
		if _, err := s.Append(testRecord("attack", "", 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			segs++
		}
	}
	if segs > 3 {
		t.Fatalf("retention kept %d segments, cap 3", segs)
	}
	if s.Len() >= total || s.Len() == 0 {
		t.Fatalf("index len = %d, want 0 < len < %d after retention", s.Len(), total)
	}
	// The retained window is the newest suffix and stays queryable.
	res := s.Query(Query{Limit: 1000})
	if res.Total != s.Len() {
		t.Fatalf("query total %d != len %d", res.Total, s.Len())
	}
	if last := res.Records[len(res.Records)-1].Seq; last != int64(total) {
		t.Fatalf("newest seq = %d, want %d", last, total)
	}
}

// TestStoreConcurrentAppendQuery hammers the store from parallel appenders,
// queriers, and aggregators while tiny segments keep rotation and retention
// compaction constantly active — the -race workout the service relies on.
func TestStoreConcurrentAppendQuery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, MaxSegmentBytes: 2048, MaxSegments: 4, SyncEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const (
		writers    = 4
		perWriter  = 150
		queriers   = 3
		iterations = 60
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				kind := "attack"
				if i%2 == 0 {
					kind = "diagnose"
				}
				rec := testRecord(kind, fmt.Sprintf("t%d", w), 0.9)
				if _, err := s.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cursor int64
			for i := 0; i < iterations; i++ {
				res := s.Query(Query{AfterSeq: cursor, Limit: 50})
				for j := 1; j < len(res.Records); j++ {
					if res.Records[j].Seq <= res.Records[j-1].Seq {
						t.Error("page not strictly seq-ordered")
						return
					}
				}
				cursor = res.NextAfter
				s.Aggregate("attack", "", 32)
				s.Kinds()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s.LastSeq() != writers*perWriter {
		t.Fatalf("lastSeq = %d, want %d", s.LastSeq(), writers*perWriter)
	}
}

func TestStoreRejectsMissingDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir must fail")
	}
}

func TestStoreClosedAppendFails(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(testRecord("attack", "", 1)); err == nil {
		t.Fatal("append after Close must fail")
	}
}
