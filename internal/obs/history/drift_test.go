package history

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"reveal/internal/obs"
)

func record(kind string, metrics map[string]float64) RunRecord {
	return RunRecord{Kind: kind, Metrics: metrics}
}

// TestWatchdogFiresOnDegradingAccuracy feeds a synthetic series: a stable
// high-accuracy phase that pins the baseline, then a collapse. The watchdog
// must fire exactly once per drifted metric (edge-triggered), emit the
// journal event, and bump the labeled counter.
func TestWatchdogFiresOnDegradingAccuracy(t *testing.T) {
	reg := obs.NewRegistry()
	var events []obs.ServiceEvent
	w, err := NewWatchdog(DriftConfig{
		Window: 4, MinRuns: 4, Tolerance: 0.05,
		Registry: reg,
		Emit:     func(ev obs.ServiceEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy phase: accuracy ~0.95 pins the baseline after MinRuns.
	for i := 0; i < 4; i++ {
		if alerts := w.Observe(record("attack", map[string]float64{
			"value_accuracy": 0.95, "mean_margin": 0.8,
		})); alerts != nil {
			t.Fatalf("run %d: fired before a baseline existed: %+v", i, alerts)
		}
	}
	if base := w.Baselines()["attack"]; math.Abs(base["value_accuracy"]-0.95) > 1e-12 {
		t.Fatalf("baseline not pinned from the healthy window: %v", base)
	}

	// A single mildly-low run inside the window mean tolerance: no alert.
	if alerts := w.Observe(record("attack", map[string]float64{
		"value_accuracy": 0.90, "mean_margin": 0.78,
	})); len(alerts) != 0 {
		t.Fatalf("one soft run must not fire through a window of 4: %+v", alerts)
	}

	// Collapse: repeated 0.60 runs drag the rolling mean far past 5%.
	var fired []DriftAlert
	for i := 0; i < 6; i++ {
		fired = append(fired, w.Observe(record("attack", map[string]float64{
			"value_accuracy": 0.60, "mean_margin": 0.30,
		}))...)
	}
	var accAlert *DriftAlert
	for i := range fired {
		if fired[i].Metric == "value_accuracy" {
			if accAlert != nil {
				t.Fatalf("value_accuracy fired twice without recovery: %+v", fired)
			}
			accAlert = &fired[i]
		}
	}
	if accAlert == nil {
		t.Fatalf("degrading accuracy never fired: %+v", fired)
	}
	if accAlert.Baseline < accAlert.Current {
		t.Fatalf("alert direction wrong: %+v", accAlert)
	}
	if accAlert.RelDelta >= -0.05 {
		t.Fatalf("rel delta %.3f should be well past −5%%", accAlert.RelDelta)
	}

	// Journal + counter surfaces.
	found := false
	for _, ev := range events {
		if ev.Type == obs.EventQualityDrift && ev.Kind == "attack" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no quality_drift journal event emitted: %+v", events)
	}
	key := obs.LabelKeys(MetricQualityDrift, "kind", "attack", "metric", "value_accuracy")
	if got := reg.Counter(key).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", key, got)
	}

	// Recovery then a second collapse re-arms the edge trigger.
	for i := 0; i < 4; i++ {
		w.Observe(record("attack", map[string]float64{"value_accuracy": 0.95, "mean_margin": 0.8}))
	}
	refired := 0
	for i := 0; i < 6; i++ {
		for _, a := range w.Observe(record("attack", map[string]float64{
			"value_accuracy": 0.55, "mean_margin": 0.2,
		})) {
			if a.Metric == "value_accuracy" {
				refired++
			}
		}
	}
	if refired != 1 {
		t.Fatalf("re-armed trigger fired %d times, want 1", refired)
	}
	if got := reg.Counter(key).Value(); got != 2 {
		t.Fatalf("%s = %d after second drift, want 2", key, got)
	}
}

// TestWatchdogDirectionAwareness: timing metrics must never fire, and a
// *rising* bikz (lower-better) must.
func TestWatchdogDirectionAwareness(t *testing.T) {
	w, err := NewWatchdog(DriftConfig{Window: 1, MinRuns: 1, Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	base := RunRecord{Kind: "attack", ElapsedSeconds: 1.0,
		Stages:  map[string]float64{"attack_seconds": 0.5},
		Metrics: map[string]float64{"hinted_bikz": 10, "value_accuracy": 0.9}}
	if alerts := w.Observe(base); alerts != nil {
		t.Fatalf("first run pinned, must not fire: %+v", alerts)
	}
	// Much slower run, same quality: timing is informational, no alert.
	slow := RunRecord{Kind: "attack", ElapsedSeconds: 50.0,
		Stages:  map[string]float64{"attack_seconds": 40},
		Metrics: map[string]float64{"hinted_bikz": 10, "value_accuracy": 0.9}}
	if alerts := w.Observe(slow); len(alerts) != 0 {
		t.Fatalf("timing regression must not trip the quality watchdog: %+v", alerts)
	}
	// bikz rising 50%: hint strength collapsed → alert.
	weak := RunRecord{Kind: "attack",
		Metrics: map[string]float64{"hinted_bikz": 15, "value_accuracy": 0.9}}
	alerts := w.Observe(weak)
	if len(alerts) != 1 || alerts[0].Metric != "hinted_bikz" {
		t.Fatalf("rising bikz must fire exactly hinted_bikz: %+v", alerts)
	}
}

// TestWatchdogBaselinePersistence pins a baseline, restarts the watchdog
// from the same path, and checks the reloaded baseline still gates.
func TestWatchdogBaselinePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history", "baselines.json")
	cfg := DriftConfig{Window: 2, MinRuns: 2, Tolerance: 0.05, BaselinePath: path}
	w, err := NewWatchdog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Observe(record("attack", map[string]float64{"value_accuracy": 0.9}))
	w.Observe(record("attack", map[string]float64{"value_accuracy": 0.9}))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("baseline file not persisted: %v", err)
	}

	w2, err := NewWatchdog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base := w2.Baselines()["attack"]; math.Abs(base["value_accuracy"]-0.9) > 1e-12 {
		t.Fatalf("reloaded baseline = %v", base)
	}
	if kinds := w2.Kinds(); len(kinds) != 1 || kinds[0] != "attack" {
		t.Fatalf("Kinds = %v", kinds)
	}
	// With the baseline restored, the very first bad window must fire —
	// no re-accumulating MinRuns healthy runs after a restart.
	alerts := w2.Observe(record("attack", map[string]float64{"value_accuracy": 0.5}))
	alerts = append(alerts, w2.Observe(record("attack", map[string]float64{"value_accuracy": 0.5}))...)
	if len(alerts) != 1 || alerts[0].Metric != "value_accuracy" {
		t.Fatalf("restored baseline did not gate exactly once: %+v", alerts)
	}
}

func TestWatchdogPin(t *testing.T) {
	w, err := NewWatchdog(DriftConfig{Window: 2, MinRuns: 2, Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Pin("attack"); err == nil {
		t.Fatal("Pin with no observed runs must fail")
	}
	w.Observe(record("attack", map[string]float64{"value_accuracy": 0.9}))
	w.Observe(record("attack", map[string]float64{"value_accuracy": 0.9}))
	// Quality settles lower; the drop alerts once...
	w.Observe(record("attack", map[string]float64{"value_accuracy": 0.7}))
	w.Observe(record("attack", map[string]float64{"value_accuracy": 0.7}))
	// ...until the operator accepts the new level as the reference.
	if err := w.Pin("attack"); err != nil {
		t.Fatal(err)
	}
	if base := w.Baselines()["attack"]; math.Abs(base["value_accuracy"]-0.7) > 1e-12 {
		t.Fatalf("re-pinned baseline = %v", base)
	}
	if alerts := w.Observe(record("attack", map[string]float64{"value_accuracy": 0.7})); len(alerts) != 0 {
		t.Fatalf("post-pin steady state fired: %+v", alerts)
	}
	// The sleep kind (no metrics) is ignored entirely.
	if alerts := w.Observe(RunRecord{Kind: "sleep"}); alerts != nil {
		t.Fatalf("metric-less record fired: %+v", alerts)
	}
	var nilW *Watchdog
	if nilW.Observe(record("attack", map[string]float64{"value_accuracy": 1})) != nil {
		t.Fatal("nil watchdog must ignore Observe")
	}
}
