package history

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func TestAggregateRecords(t *testing.T) {
	var recs []RunRecord
	vals := []float64{0.90, 0.92, 0.94, 0.96}
	for _, v := range vals {
		recs = append(recs, RunRecord{
			Kind:           "attack",
			ElapsedSeconds: 1.5,
			Stages:         map[string]float64{"attack_seconds": 1.0},
			Metrics:        map[string]float64{"value_accuracy": v},
		})
	}
	aggs := AggregateRecords(recs)
	byName := map[string]MetricAggregate{}
	for _, a := range aggs {
		byName[a.Metric] = a
	}
	acc, ok := byName["value_accuracy"]
	if !ok {
		t.Fatalf("value_accuracy missing: %+v", aggs)
	}
	if acc.Count != 4 {
		t.Fatalf("count = %d", acc.Count)
	}
	approx(t, "mean", acc.Mean, 0.93)
	approx(t, "min", acc.Min, 0.90)
	approx(t, "max", acc.Max, 0.96)
	approx(t, "last", acc.Last, 0.96)
	approx(t, "p50", acc.P50, 0.92) // nearest-rank on 4 samples
	approx(t, "p95", acc.P95, 0.96)
	// EWMA(0.3) over 0.90,0.92,0.94,0.96 leans toward the recent runs but
	// trails Last.
	ewma := 0.90
	for _, v := range vals[1:] {
		ewma = EWMAAlpha*v + (1-EWMAAlpha)*ewma
	}
	approx(t, "ewma", acc.EWMA, ewma)
	if acc.EWMA >= acc.Last || acc.EWMA <= acc.Min {
		t.Fatalf("EWMA %v should trail last %v but exceed min %v on a rising series",
			acc.EWMA, acc.Last, acc.Min)
	}

	// Stage durations and the wall clock are aggregated under their dotted
	// names so reports can show the full trajectory.
	if _, ok := byName["stage.attack_seconds"]; !ok {
		t.Fatalf("stage aggregate missing: %+v", aggs)
	}
	if _, ok := byName["elapsed_seconds"]; !ok {
		t.Fatalf("elapsed aggregate missing: %+v", aggs)
	}

	// Names are sorted for deterministic rendering.
	for i := 1; i < len(aggs); i++ {
		if aggs[i].Metric < aggs[i-1].Metric {
			t.Fatalf("aggregates not sorted: %+v", aggs)
		}
	}
	if got := AggregateRecords(nil); len(got) != 0 {
		t.Fatalf("empty input produced %+v", got)
	}
}

func TestStoreAggregateWindows(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		acc := 0.5
		if i >= 5 {
			acc = 1.0 // the newest half is perfect
		}
		if _, err := s.Append(RunRecord{Kind: "attack",
			Metrics: map[string]float64{"value_accuracy": acc}}); err != nil {
			t.Fatal(err)
		}
	}
	all := s.Aggregate("attack", "", 0)
	if all.Runs != 10 {
		t.Fatalf("runs = %d", all.Runs)
	}
	recent := s.Aggregate("attack", "", 5)
	if recent.Runs != 5 {
		t.Fatalf("windowed runs = %d", recent.Runs)
	}
	var allMean, recentMean float64
	for _, m := range all.Metrics {
		if m.Metric == "value_accuracy" {
			allMean = m.Mean
		}
	}
	for _, m := range recent.Metrics {
		if m.Metric == "value_accuracy" {
			recentMean = m.Mean
		}
	}
	approx(t, "all mean", allMean, 0.75)
	approx(t, "recent mean", recentMean, 1.0)
	if none := s.Aggregate("diagnose", "", 0); none.Runs != 0 || len(none.Metrics) != 0 {
		t.Fatalf("unknown kind aggregated: %+v", none)
	}
}
