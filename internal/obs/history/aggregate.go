package history

import (
	"math"
	"sort"
)

// EWMAAlpha is the smoothing factor of the exponentially weighted moving
// average in MetricAggregate: ~0.3 tracks a drifting metric within a
// handful of runs without whipsawing on a single outlier.
const EWMAAlpha = 0.3

// MetricAggregate summarizes one metric's trajectory across a window of
// run records (chronological order).
type MetricAggregate struct {
	Metric string  `json:"metric"`
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	// Last is the newest observation; EWMA is the exponentially weighted
	// moving average (alpha EWMAAlpha), which leans toward recent runs.
	Last float64 `json:"last"`
	EWMA float64 `json:"ewma"`
}

// KindAggregate is the aggregation of one campaign kind's recent records.
type KindAggregate struct {
	Kind   string `json:"kind"`
	Tenant string `json:"tenant,omitempty"`
	// Runs is how many records were aggregated (the window actually used).
	Runs int `json:"runs"`
	// Metrics is sorted by metric name. Stage durations appear under
	// "stage.*" and the job wall clock as "elapsed_seconds".
	Metrics []MetricAggregate `json:"metrics,omitempty"`
}

// AggregateRecords computes per-metric aggregates over records, which must
// be in chronological (oldest-first) order for Last/EWMA to be meaningful.
// A metric missing from some records is aggregated over the records that
// carry it.
func AggregateRecords(records []RunRecord) []MetricAggregate {
	series := map[string][]float64{}
	for i := range records {
		for name, v := range records[i].Values() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			series[name] = append(series[name], v)
		}
	}
	out := make([]MetricAggregate, 0, len(series))
	for name, vals := range series {
		agg := MetricAggregate{Metric: name, Count: len(vals), Min: vals[0], Max: vals[0]}
		sum := 0.0
		ewma := vals[0]
		for i, v := range vals {
			sum += v
			if v < agg.Min {
				agg.Min = v
			}
			if v > agg.Max {
				agg.Max = v
			}
			if i > 0 {
				ewma = EWMAAlpha*v + (1-EWMAAlpha)*ewma
			}
		}
		agg.Mean = sum / float64(len(vals))
		agg.Last = vals[len(vals)-1]
		agg.EWMA = ewma
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		agg.P50 = quantile(sorted, 0.50)
		agg.P95 = quantile(sorted, 0.95)
		out = append(out, agg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Metric < out[j].Metric })
	return out
}

// quantile reads q from an ascending slice (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Aggregate summarizes the newest window records of kind/tenant ("" matches
// all; window <= 0 uses every retained record).
func (s *Store) Aggregate(kind, tenant string, window int) KindAggregate {
	recs := s.Recent(kind, tenant, window)
	return KindAggregate{Kind: kind, Tenant: tenant, Runs: len(recs), Metrics: AggregateRecords(recs)}
}

// windowMeans reduces a window of records to per-metric means — the value
// set the drift watchdog compares against the pinned baseline.
func windowMeans(records []RunRecord) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for i := range records {
		for name, v := range records[i].Values() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sums[name] += v
			counts[name]++
		}
	}
	means := make(map[string]float64, len(sums))
	for name, sum := range sums {
		means[name] = sum / float64(counts[name])
	}
	return means
}
