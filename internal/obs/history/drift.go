package history

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"reveal/internal/obs"
)

// MetricQualityDrift is the drift counter family: one series per
// (campaign kind, metric) pair that has crossed its tolerance.
const MetricQualityDrift = "reveal_quality_drift_total"

// DriftConfig configures the watchdog.
type DriftConfig struct {
	// Window is how many recent runs per kind feed the rolling means
	// compared against the baseline (default 8).
	Window int
	// MinRuns is how many runs of a kind must accumulate before a baseline
	// is auto-pinned from their means (default 4). Until a kind has a
	// baseline nothing can fire.
	MinRuns int
	// Tolerance is the relative tolerance before a gated metric counts as
	// drifted (default 0.05), with the same direction-aware semantics as
	// `revealctl compare`: accuracy/margin/SNR may only fall so far, bikz
	// may only rise so far, and timing metrics never gate.
	Tolerance float64
	// MetricTolerance overrides the tolerance per metric name; keys ending
	// in '*' match by prefix (obs.CompareOptions semantics).
	MetricTolerance map[string]float64
	// BaselinePath, when non-empty, persists pinned baselines as JSON so a
	// restarted daemon keeps watching against the same reference.
	BaselinePath string
	// Registry receives the reveal_quality_drift_total counter (nil uses
	// the global recorder's registry).
	Registry *obs.Registry
	// Emit receives one quality_drift journal event per firing (typically
	// obs.Emit); nil disables journaling.
	Emit func(obs.ServiceEvent)
}

// DriftAlert is one watchdog firing: a gated metric's rolling mean moved
// past tolerance in its losing direction.
type DriftAlert struct {
	Kind      string  `json:"kind"`
	Metric    string  `json:"metric"`
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
	RelDelta  float64 `json:"rel_delta"`
	Tolerance float64 `json:"tolerance"`
}

// Watchdog watches per-kind quality trajectories: it pins a baseline from
// the first MinRuns runs of each campaign kind, then compares every new
// rolling window of means against it with obs.CompareMetrics. Each firing
// emits a quality_drift journal event and bumps
// reveal_quality_drift_total{kind,metric}; the alert state is
// edge-triggered, so a metric that stays degraded fires once until it
// recovers and degrades again.
type Watchdog struct {
	cfg DriftConfig

	mu        sync.Mutex
	windows   map[string][]map[string]float64 // per kind: recent run values
	baselines map[string]map[string]float64   // per kind: pinned means
	alerting  map[string]map[string]bool      // per kind/metric: in drift
}

// NewWatchdog builds a watchdog, loading persisted baselines from
// cfg.BaselinePath when the file exists.
func NewWatchdog(cfg DriftConfig) (*Watchdog, error) {
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.MinRuns <= 0 {
		cfg.MinRuns = 4
	}
	if cfg.MinRuns > cfg.Window {
		cfg.MinRuns = cfg.Window
	}
	if cfg.Tolerance == 0 {
		cfg.Tolerance = 0.05
	}
	w := &Watchdog{
		cfg:       cfg,
		windows:   map[string][]map[string]float64{},
		baselines: map[string]map[string]float64{},
		alerting:  map[string]map[string]bool{},
	}
	if cfg.BaselinePath != "" {
		data, err := os.ReadFile(cfg.BaselinePath)
		switch {
		case err == nil:
			if jerr := json.Unmarshal(data, &w.baselines); jerr != nil {
				return nil, fmt.Errorf("history: parsing baselines %s: %w", cfg.BaselinePath, jerr)
			}
		case !os.IsNotExist(err):
			return nil, fmt.Errorf("history: reading baselines: %w", err)
		}
	}
	return w, nil
}

// registry resolves the counter registry lazily so a zero-config watchdog
// still counts on the global recorder.
func (w *Watchdog) registry() *obs.Registry {
	if w.cfg.Registry != nil {
		return w.cfg.Registry
	}
	return obs.Global().Registry()
}

// Observe feeds one freshly appended record into the watchdog and returns
// any alerts that fired on it. Records without quality metrics (e.g. the
// "sleep" testing kind) are ignored.
func (w *Watchdog) Observe(rec RunRecord) []DriftAlert {
	if w == nil || len(rec.Metrics) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	win := append(w.windows[rec.Kind], rec.Values())
	if len(win) > w.cfg.Window {
		win = win[len(win)-w.cfg.Window:]
	}
	w.windows[rec.Kind] = win

	if w.baselines[rec.Kind] == nil {
		if len(win) >= w.cfg.MinRuns {
			w.baselines[rec.Kind] = meansOf(win)
			w.persistLocked()
		}
		return nil
	}
	return w.evaluateLocked(rec.Kind)
}

// evaluateLocked compares the kind's rolling means against its baseline and
// fires edge-triggered alerts.
func (w *Watchdog) evaluateLocked(kind string) []DriftAlert {
	baseline := w.baselines[kind]
	means := meansOf(w.windows[kind])
	deltas, _ := obs.CompareMetrics(
		&obs.RunMetrics{Path: "baseline", Kind: "history", Values: baseline},
		&obs.RunMetrics{Path: "window", Kind: "history", Values: means},
		obs.CompareOptions{Tolerance: w.cfg.Tolerance, MetricTolerance: w.cfg.MetricTolerance},
	)
	state := w.alerting[kind]
	if state == nil {
		state = map[string]bool{}
		w.alerting[kind] = state
	}
	var alerts []DriftAlert
	for _, d := range deltas {
		// A metric absent from the current window (MissingIn) is not a
		// quality drop — small windows legitimately miss optional metrics.
		if d.MissingIn != "" {
			state[d.Name] = false
			continue
		}
		if !d.Regressed {
			state[d.Name] = false
			continue
		}
		if state[d.Name] {
			continue // still drifted; already reported
		}
		state[d.Name] = true
		alert := DriftAlert{
			Kind: kind, Metric: d.Name,
			Baseline: d.Old, Current: d.New,
			RelDelta: d.RelDelta, Tolerance: d.Tolerance,
		}
		alerts = append(alerts, alert)
		w.registry().Counter(obs.LabelKeys(MetricQualityDrift,
			"kind", kind, "metric", d.Name)).Inc()
		if w.cfg.Emit != nil {
			w.cfg.Emit(obs.ServiceEvent{
				Type: obs.EventQualityDrift,
				Kind: kind,
				Detail: fmt.Sprintf("%s: baseline %.6g -> window mean %.6g (%+.1f%%, tolerance %.0f%%)",
					d.Name, d.Old, d.New, 100*d.RelDelta, 100*d.Tolerance),
			})
		}
	}
	return alerts
}

// Pin re-pins kind's baseline from its current rolling window (manual
// re-baselining after an accepted change) and clears its alert state.
func (w *Watchdog) Pin(kind string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	win := w.windows[kind]
	if len(win) == 0 {
		return fmt.Errorf("history: no observed runs of kind %q to pin", kind)
	}
	w.baselines[kind] = meansOf(win)
	w.alerting[kind] = map[string]bool{}
	w.persistLocked()
	return nil
}

// Baselines returns a copy of the pinned baselines keyed by kind.
func (w *Watchdog) Baselines() map[string]map[string]float64 {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]map[string]float64, len(w.baselines))
	for kind, metrics := range w.baselines {
		m := make(map[string]float64, len(metrics))
		for k, v := range metrics {
			m[k] = v
		}
		out[kind] = m
	}
	return out
}

// Kinds returns the kinds with a pinned baseline, sorted.
func (w *Watchdog) Kinds() []string {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	kinds := make([]string, 0, len(w.baselines))
	for k := range w.baselines {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// persistLocked writes the baselines atomically (tmp + rename); best-effort
// — the watchdog keeps working in memory when the disk write fails.
func (w *Watchdog) persistLocked() {
	if w.cfg.BaselinePath == "" {
		return
	}
	data, err := json.MarshalIndent(w.baselines, "", "  ")
	if err != nil {
		return
	}
	tmp := w.cfg.BaselinePath + ".tmp"
	if err := os.MkdirAll(filepath.Dir(w.cfg.BaselinePath), 0o755); err != nil {
		return
	}
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, w.cfg.BaselinePath)
}

// meansOf averages a window of value maps metric by metric.
func meansOf(window []map[string]float64) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, values := range window {
		for name, v := range values {
			sums[name] += v
			counts[name]++
		}
	}
	means := make(map[string]float64, len(sums))
	for name, sum := range sums {
		means[name] = sum / float64(counts[name])
	}
	return means
}
