package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestProfilerCollectOnce(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	p, err := NewProfiler(ProfilerOptions{
		Dir: dir, CPUDuration: 20 * time.Millisecond, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cpuPath, heapPath, err := p.CollectOnce()
	if err != nil {
		t.Fatal(err)
	}
	if heapPath == "" {
		t.Fatal("no heap profile written")
	}
	for _, path := range []string{cpuPath, heapPath} {
		if path == "" {
			continue // CPU profiler may be held by the test harness itself
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}

	// The runtime gauges must be live after a capture cycle.
	if g := reg.Gauge(MetricRuntimeGoroutines).Value(); g < 1 {
		t.Fatalf("%s = %v, want >= 1", MetricRuntimeGoroutines, g)
	}
	if h := reg.Gauge(MetricRuntimeHeapBytes).Value(); h <= 0 {
		t.Fatalf("%s = %v, want > 0", MetricRuntimeHeapBytes, h)
	}
	if c := reg.Counter(MetricProfilesCaptured).Value(); c != 1 {
		t.Fatalf("%s = %d, want 1", MetricProfilesCaptured, c)
	}
	// GC at least once so the pause distribution is non-degenerate, then
	// re-sample: the gauges must not go negative or NaN.
	runtime.GC()
	p.SampleRuntimeMetrics()
	for _, name := range []string{
		MetricRuntimeGCPauseP50, MetricRuntimeGCPauseMax,
		MetricRuntimeSchedLatP50, MetricRuntimeSchedLatP99,
		MetricRuntimeGCCycles,
	} {
		if v := reg.Gauge(name).Value(); v < 0 || v != v {
			t.Fatalf("%s = %v, want finite >= 0", name, v)
		}
	}
	if v := reg.Gauge(MetricRuntimeGCCycles).Value(); v < 1 {
		t.Fatalf("%s = %v after an explicit GC, want >= 1", MetricRuntimeGCCycles, v)
	}
}

func TestProfilerRetentionAndResume(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	p, err := NewProfiler(ProfilerOptions{
		Dir: dir, CPUDuration: time.Millisecond, MaxProfiles: 3, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := p.CollectOnce(); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	heaps, err := filepath.Glob(filepath.Join(dir, "heap-*.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if len(heaps) != 3 {
		t.Fatalf("retention kept %d heap profiles, want 3: %v", len(heaps), heaps)
	}
	// The newest capture survives the prune.
	want := filepath.Join(dir, "heap-000005.pprof")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("newest profile pruned: %v", err)
	}

	// A restarted profiler resumes numbering after the retained files.
	p2, err := NewProfiler(ProfilerOptions{
		Dir: dir, CPUDuration: time.Millisecond, MaxProfiles: 3, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	_, heapPath, err := p2.CollectOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(heapPath, "heap-000006.pprof") {
		t.Fatalf("restart reused a sequence number: %s", heapPath)
	}
}

func TestProfilerStartStop(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerOptions{
		Dir: dir, Interval: 20 * time.Millisecond,
		CPUDuration: time.Millisecond, Registry: NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m, _ := filepath.Glob(filepath.Join(dir, "heap-*.pprof")); len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic loop produced no profile within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	p.Close()
	p.Close() // idempotent
	if _, err := NewProfiler(ProfilerOptions{}); err == nil {
		t.Fatal("NewProfiler without Dir must fail")
	}
}

// TestRuntimeAndDriftFamiliesParse renders a registry carrying the new
// runtime-telemetry gauges and a labeled quality-drift counter through
// WritePrometheus and validates the exposition with ParsePrometheusText —
// the same check the scrape smoke test runs against a live daemon.
func TestRuntimeAndDriftFamiliesParse(t *testing.T) {
	reg := NewRegistry()
	p, err := NewProfiler(ProfilerOptions{Dir: t.TempDir(), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SampleRuntimeMetrics()
	reg.Counter(LabelKeys("reveal_quality_drift_total",
		"kind", "attack", "metric", "value_accuracy")).Inc()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	pm, err := ParsePrometheusText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	for _, name := range []string{
		MetricRuntimeGoroutines, MetricRuntimeHeapBytes,
		MetricRuntimeGCPauseP50, MetricRuntimeGCPauseMax,
		MetricRuntimeSchedLatP50, MetricRuntimeSchedLatP99,
		MetricRuntimeGCCycles,
	} {
		if !pm.HasMetric(name) {
			t.Fatalf("family %s missing from exposition:\n%s", name, buf.String())
		}
	}
	key := `reveal_quality_drift_total{kind="attack",metric="value_accuracy"}`
	v, ok := pm.Value(key)
	if !ok || v != 1 {
		t.Fatalf("%s = %v (ok=%v) in exposition:\n%s", key, v, ok, buf.String())
	}
}

func TestLabelKeys(t *testing.T) {
	got := LabelKeys("m", "kind", "attack", "metric", "value_accuracy")
	want := `m{kind="attack",metric="value_accuracy"}`
	if got != want {
		t.Fatalf("LabelKeys = %s, want %s", got, want)
	}
	if got := LabelKeys("m"); got != "m{}" {
		t.Fatalf("no-label LabelKeys = %s", got)
	}
	if got := LabelKeys("m", "a", `x"y`); got != `m{a="x\"y"}` {
		t.Fatalf("escaping broken: %s", got)
	}
	// Consistency with the single-pair renderer used everywhere else.
	if LabelKeys("m", "kind", "attack") != LabelKey("m", "kind", "attack") {
		t.Fatal("LabelKeys and LabelKey disagree on one pair")
	}
}

// TestSinkFlushDurability is the regression test for the SIGTERM-drain fix:
// after CloseSink the events.jsonl file must hold every appended event with
// no buffered tail lost, and the returned drop count must be zero on a
// healthy disk. It also checks the idle flush: events become visible on
// disk without closing the sink.
func TestSinkFlushDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	l := NewEventLog(64, NewRegistry())
	l.AttachSink(f)
	const total = 40
	for i := 0; i < total; i++ {
		l.Append(ServiceEvent{Type: EventJobFinished, JobID: fmt.Sprintf("j%02d", i)})
	}
	// Idle flush: the writer trails only while a burst is in flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sink never flushed while idle")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if dropped := l.CloseSink(); dropped != 0 {
		t.Fatalf("CloseSink dropped %d on a healthy file", dropped)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != total {
		t.Fatalf("events.jsonl holds %d lines after CloseSink, want %d", lines, total)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Fatal("journal must end on a complete line")
	}
	// CloseSink is idempotent and keeps returning the final count.
	if l.CloseSink() != 0 {
		t.Fatal("second CloseSink changed the drop count")
	}
}
