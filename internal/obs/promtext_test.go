package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestParsePrometheusTextRoundTrip feeds a real Registry.WritePrometheus
// exposition — counters, gauges, labeled vectors with escaping-hostile
// values, and histogram summaries — back through the parser and checks the
// samples survive intact. This is the same validation the service smoke
// test applies to a live /metrics scrape.
func TestParsePrometheusTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reveal_rt_total").Add(3)
	reg.Gauge("reveal_rt_depth").Set(2.5)
	vec := reg.CounterVec("reveal_rt_jobs_total", "tenant", 8)
	vec.With("acme").Inc()
	vec.With("acme").Inc()
	vec.With(`we"ird\ten`).Inc() // exercises the label escaping path
	hist := reg.HistogramVec("reveal_rt_latency_seconds", "kind", 8).With("attack")
	hist.Observe(0.1)
	hist.Observe(0.3)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	pm, err := ParsePrometheusText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("real exposition rejected: %v\n%s", err, buf.String())
	}

	if v, ok := pm.Value("reveal_rt_total"); !ok || v != 3 {
		t.Errorf("reveal_rt_total = %v, %v; want 3", v, ok)
	}
	if v, ok := pm.Value("reveal_rt_depth"); !ok || v != 2.5 {
		t.Errorf("reveal_rt_depth = %v, %v; want 2.5", v, ok)
	}
	if v, ok := pm.Value(LabelKey("reveal_rt_jobs_total", "tenant", "acme")); !ok || v != 2 {
		t.Errorf("acme counter = %v, %v; want 2", v, ok)
	}
	if v, ok := pm.Value(LabelKey("reveal_rt_jobs_total", "tenant", `we"ird\ten`)); !ok || v != 1 {
		t.Errorf("escaped-label counter = %v, %v; want 1", v, ok)
	}
	if v, ok := pm.Value(`reveal_rt_latency_seconds_count{kind="attack"}`); !ok || v != 2 {
		t.Errorf("histogram count = %v, %v; want 2", v, ok)
	}
	if v, ok := pm.Value(`reveal_rt_latency_seconds_sum{kind="attack"}`); !ok || v < 0.39 || v > 0.41 {
		t.Errorf("histogram sum = %v, %v; want ~0.4", v, ok)
	}
	if !pm.HasMetric("reveal_rt_latency_seconds") {
		t.Error("histogram base name missing")
	}
	if pm.Types["reveal_rt_total"] != "counter" || pm.Types["reveal_rt_depth"] != "gauge" ||
		pm.Types["reveal_rt_latency_seconds"] != "summary" {
		t.Errorf("TYPE declarations = %v", pm.Types)
	}
}

// TestParsePrometheusTextMalformed pins the rejections a scraper depends
// on: the parser is the smoke test's oracle, so it must fail loudly on
// output a real Prometheus would refuse to ingest.
func TestParsePrometheusTextMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"comments only", "# HELP m something\n# TYPE m counter\n"},
		{"no value", "just_a_name\n"},
		{"bad value", "m nope\n"},
		{"duplicate series", "m 1\nm 2\n"},
		{"unterminated quote", `m{l="x} 1` + "\n"},
		{"unterminated braces", `m{a="b" 1` + "\n"},
		{"nested braces", `m{{a="b"}} 1` + "\n"},
		{"bad metric name", "9bad 1\n"},
		{"bad label name", `m{9bad="v"} 1` + "\n"},
		{"garbage after label value", `m{a="v"extra} 1` + "\n"},
		{"unknown type", "# TYPE m bogus\nm 1\n"},
		{"type redeclared", "# TYPE m counter\n# TYPE m gauge\nm 1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParsePrometheusText(strings.NewReader(c.in)); err == nil {
				t.Fatalf("accepted malformed exposition %q", c.in)
			}
		})
	}
}

// TestParsePrometheusTextTimestamps accepts the optional trailing
// timestamp field the format permits.
func TestParsePrometheusTextTimestamps(t *testing.T) {
	pm, err := ParsePrometheusText(strings.NewReader("m 1.5 1690000000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := pm.Value("m"); !ok || v != 1.5 {
		t.Fatalf("timestamped sample = %v, %v", v, ok)
	}
}
