// Package obs is the observability layer of the reproduction: a structured
// slog-based logger, a concurrency-safe metrics registry (counters, gauges,
// streaming histograms with p50/p95/p99), hierarchical stage spans timing
// every step of the attack pipeline, bounded-memory event tracing (Chrome
// trace_event trace.json plus a per-coefficient coeffs.jsonl journal),
// per-run artifact manifests with a tolerance-based run comparator, and
// opt-in live HTTP endpoints (/metrics, /progress, /healthz, /debug/pprof).
//
// The package is disabled by default: the global recorder is nil, spans are
// nil pointers whose methods are no-ops, and the instrumented hot paths pay
// one atomic load per stage entry. Long campaigns enable it with
//
//	rec := obs.New(obs.Options{Level: slog.LevelInfo})
//	obs.SetGlobal(rec)
//
// or, for a fully archived run, obs.StartRun, which also writes
// manifest.json and a Prometheus-text metrics.txt into a run directory.
package obs

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder bundles a logger, a metrics registry, and the live span state.
// A nil *Recorder is valid and records nothing.
type Recorder struct {
	registry *Registry
	logger   *slog.Logger
	start    time.Time

	// spanEvents buffers Chrome trace_event records of completed spans;
	// coeffEvents journals per-coefficient classification outcomes. Either
	// is nil when the corresponding capacity was 0 (tracing disabled).
	spanEvents  *boundedBuffer[TraceEvent]
	coeffEvents *boundedBuffer[CoeffEvent]

	// serviceEvents is the append-only service journal behind the /events
	// endpoint and events.jsonl; nil when EventCapacity was 0.
	serviceEvents *EventLog

	mu     sync.Mutex
	active map[string]int
}

// Options configures a Recorder.
type Options struct {
	// Logger receives the structured log stream. Nil discards logs.
	Logger *slog.Logger
	// Registry is the metrics registry; nil allocates a fresh one.
	Registry *Registry
	// TraceCapacity bounds the span trace-event buffer exported as
	// trace.json; 0 disables span tracing.
	TraceCapacity int
	// CoeffCapacity bounds the per-coefficient event journal exported as
	// coeffs.jsonl; 0 disables the journal (aggregate coefficient metrics
	// are still recorded).
	CoeffCapacity int
	// TraceRing switches the span trace-event buffer from drop-newest (the
	// archived-run default: trace.json keeps the run's beginning) to a ring
	// that overwrites the oldest events — the right shape for a long-lived
	// daemon exporting per-job traces.
	TraceRing bool
	// EventCapacity bounds the service event journal ring served on /events
	// and written to events.jsonl; 0 disables it.
	EventCapacity int
}

// New builds a Recorder.
func New(opts Options) *Recorder {
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	rec := &Recorder{
		registry:    reg,
		logger:      opts.Logger,
		start:       time.Now(),
		spanEvents:  newBoundedBuffer[TraceEvent](opts.TraceCapacity),
		coeffEvents: newBoundedBuffer[CoeffEvent](opts.CoeffCapacity),
		active:      map[string]int{},
	}
	rec.spanEvents.setRing(opts.TraceRing)
	if opts.EventCapacity > 0 {
		rec.serviceEvents = NewEventLog(opts.EventCapacity, reg)
	}
	return rec
}

// Registry returns the recorder's metrics registry (nil for a nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.registry
}

// Logger returns the recorder's logger, or a discard logger so callers can
// log unconditionally.
func (r *Recorder) Logger() *slog.Logger {
	if r == nil || r.logger == nil {
		return discardLogger
	}
	return r.logger
}

// Uptime reports how long the recorder has been alive.
func (r *Recorder) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// global is the process-wide recorder used by the package-level helpers the
// pipeline calls. It is swapped atomically so the disabled hot path costs a
// single load.
var global atomic.Pointer[Recorder]

// SetGlobal installs rec as the process-wide recorder (nil disables).
func SetGlobal(rec *Recorder) { global.Store(rec) }

// Global returns the process-wide recorder; nil when observability is
// disabled (the default).
func Global() *Recorder { return global.Load() }

// Enabled reports whether a global recorder is installed.
func Enabled() bool { return global.Load() != nil }

// Log returns the global structured logger (a discard logger when
// observability is disabled), so pipeline code can log unconditionally.
func Log() *slog.Logger { return global.Load().Logger() }
