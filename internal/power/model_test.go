package power

import (
	"math"
	"testing"

	"reveal/internal/rv32"
	"reveal/internal/sampler"
)

func runProgram(t *testing.T, src string, model *Model, seed uint64) *Synthesizer {
	t.Helper()
	img, _, err := rv32.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := rv32.NewCPU(1 << 16)
	if err := cpu.Load(img, 0); err != nil {
		t.Fatal(err)
	}
	syn, err := NewSynthesizer(model, sampler.NewXoshiro256(seed))
	if err != nil {
		t.Fatal(err)
	}
	cpu.OnEvent = syn.HandleEvent
	if _, err := cpu.Run(10000); err != nil {
		t.Fatal(err)
	}
	return syn
}

func TestValidate(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.NoiseSigma = -1
	if err := m.Validate(); err == nil {
		t.Error("negative sigma should fail")
	}
	if err := (&Model{}).Validate(); err == nil {
		t.Error("empty base map should fail")
	}
	if _, err := NewSynthesizer(&Model{}, sampler.NewXoshiro256(0)); err == nil {
		t.Error("NewSynthesizer must validate")
	}
}

func TestTraceLengthMatchesCycles(t *testing.T) {
	syn := runProgram(t, `
		li  t0, 5
		add t1, t0, t0
		ebreak
	`, DefaultModel(), 1)
	total := 0
	for _, e := range syn.Events() {
		total += e.Cycles
	}
	if len(syn.Samples()) != total {
		t.Errorf("trace has %d samples, events total %d cycles", len(syn.Samples()), total)
	}
	if len(syn.Starts()) != len(syn.Events()) {
		t.Error("starts and events misaligned")
	}
	for i := 1; i < len(syn.Starts()); i++ {
		if syn.Starts()[i] <= syn.Starts()[i-1] {
			t.Error("starts must be strictly increasing")
		}
	}
}

// Higher Hamming weight in a stored value must raise the write-back sample.
func TestHammingWeightLeakage(t *testing.T) {
	m := DefaultModel()
	m.NoiseSigma = 0             // deterministic for this test
	m.BitWeights = [32]float64{} // uniform weights for the exact check
	synLow := runProgram(t, `
		li t0, 0x1000
		li t1, 1          # HW 1
		sw t1, 0(t0)
		ebreak
	`, m, 2)
	synHigh := runProgram(t, `
		li t0, 0x1000
		li t1, 0xff       # HW 8
		sw t1, 0(t0)
		ebreak
	`, m, 2)
	// Find the store event in each run and compare its last sample.
	lastSampleOfStore := func(s *Synthesizer) float64 {
		for i, e := range s.Events() {
			if e.MemWrite {
				return s.Samples()[s.Starts()[i]+e.Cycles-1]
			}
		}
		t.Fatal("no store event")
		return 0
	}
	low, high := lastSampleOfStore(synLow), lastSampleOfStore(synHigh)
	if high <= low {
		t.Errorf("HW leakage inverted: HW8 store %v <= HW1 store %v", high, low)
	}
	// Difference should be ≈ 7·(alpha + deltaBus) since old memory was 0.
	want := 7 * (m.AlphaHWData + m.DeltaHDBus)
	if math.Abs((high-low)-want) > 1e-9 {
		t.Errorf("HW delta %v want %v", high-low, want)
	}
}

func TestPortSpikeVisible(t *testing.T) {
	m := DefaultModel()
	m.PortBase = 0x8000
	m.PortSize = 0x100
	src := `
		li t0, 0x8000
		lw a0, 0(t0)      # port access -> spike
		li t1, 0x1000
		lw a1, 0(t1)      # plain load
		ebreak
	`
	img, _, err := rv32.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := rv32.NewCPU(1 << 16)
	cpu.MapMMIO(0x8000, 0x100, &constDevice{})
	if err := cpu.Load(img, 0); err != nil {
		t.Fatal(err)
	}
	syn, err := NewSynthesizer(m, sampler.NewXoshiro256(3))
	if err != nil {
		t.Fatal(err)
	}
	cpu.OnEvent = syn.HandleEvent
	if _, err := cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	samples := syn.Samples()
	max := 0.0
	for _, v := range samples {
		if v > max {
			max = v
		}
	}
	if max < m.PortSpike {
		t.Errorf("no visible port spike: max sample %v < spike %v", max, m.PortSpike)
	}
}

type constDevice struct{}

func (d *constDevice) Read(uint32) (uint32, int) { return 7, 2 }
func (d *constDevice) Write(uint32, uint32) int  { return 0 }

// Different code paths (branch bodies) must produce different deterministic
// power shapes — the V1 leakage.
func TestControlFlowDistinguishable(t *testing.T) {
	m := DefaultModel()
	m.NoiseSigma = 0
	pos := runProgram(t, `
		li   a0, 5
		blt  zero, a0, positive
		j    done
	positive:
		mv   a1, a0
	done:
		ebreak
	`, m, 4)
	neg := runProgram(t, `
		li   a0, -5
		blt  zero, a0, positive
		j    done
	positive:
		mv   a1, a0
	done:
		ebreak
	`, m, 4)
	a, b := pos.Samples(), neg.Samples()
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different branches produced identical traces")
		}
	}
}

func TestReset(t *testing.T) {
	syn := runProgram(t, "ebreak", DefaultModel(), 5)
	if len(syn.Samples()) == 0 {
		t.Fatal("expected samples")
	}
	syn.Reset()
	if len(syn.Samples()) != 0 || len(syn.Events()) != 0 || len(syn.Starts()) != 0 {
		t.Error("reset did not clear state")
	}
}

func TestNoiseStatistics(t *testing.T) {
	m := DefaultModel()
	m.NoiseSigma = 0.5
	// A long run of identical instructions: variance of samples ≈ σ².
	syn := runProgram(t, `
		li t0, 1000
	loop:
		addi t0, t0, -1
		bnez t0, loop
		ebreak
	`, m, 6)
	samples := syn.Samples()
	// Use only addi write-back samples? Simpler: overall variance is
	// dominated by class/HW structure; instead compare same-position
	// samples across iterations. Take every 7th sample (addi=3 + taken
	// bnez=4 cycles per iteration).
	var vals []float64
	for i := 20; i+7 < len(samples)-20; i += 7 {
		vals = append(vals, samples[i])
	}
	if len(vals) < 500 {
		t.Fatalf("not enough periodic samples: %d", len(vals))
	}
	var mean, varSum float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		varSum += (v - mean) * (v - mean)
	}
	variance := varSum / float64(len(vals))
	// The periodic samples differ slightly in data HW (counter value), so
	// allow generous bounds around σ² = 0.25.
	if variance < 0.1 || variance > 0.6 {
		t.Errorf("sample variance %v implausible for sigma 0.5", variance)
	}
}

func TestHWHelpers(t *testing.T) {
	if HWByte(0x1ff) != 8 || HW32(0xffffffff) != 32 || HW32(0) != 0 {
		t.Error("HW helpers wrong")
	}
}

// Unequal bit weights must separate equal-HW values — the property that
// lets templates distinguish coefficients 1, 2 and 4.
func TestBitWeightedLeakageSeparatesEqualHW(t *testing.T) {
	m := DefaultModel()
	m.NoiseSigma = 0
	storeSample := func(value string) float64 {
		syn := runProgram(t, `
		li t0, 0x1000
		li t1, `+value+`
		sw t1, 0(t0)
		ebreak
	`, m, 20)
		for i, e := range syn.Events() {
			if e.MemWrite {
				return syn.Samples()[syn.Starts()[i]+e.Cycles-1]
			}
		}
		t.Fatal("no store")
		return 0
	}
	v1, v2, v4 := storeSample("1"), storeSample("2"), storeSample("4")
	if v1 == v2 || v2 == v4 || v1 == v4 {
		t.Errorf("equal-HW values not separated: %v %v %v", v1, v2, v4)
	}
}
