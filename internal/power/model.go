// Package power turns rv32 execution events into synthetic side-channel
// traces using the standard CMOS leakage model: instantaneous power is a
// per-instruction-class base cost plus terms proportional to the Hamming
// weight of the data being written (V2/V3 of the paper), the Hamming
// distance of register updates, and the Hamming weight of the instruction
// word (which makes different branch bodies distinguishable — V1), plus
// Gaussian measurement noise. It substitutes for the SAKURA-G shunt
// resistor + oscilloscope of the paper's experimental setup.
package power

import (
	"fmt"
	"math/bits"

	"reveal/internal/rv32"
	"reveal/internal/sampler"
)

// Model holds the leakage coefficients of a simulated device.
type Model struct {
	// Base is the per-cycle static power for each instruction class.
	Base map[rv32.Class]float64
	// AlphaHWData scales the Hamming weight of the data value written to
	// memory or to a register (the "second vulnerability": value stores).
	AlphaHWData float64
	// BetaHDReg scales the Hamming distance between old and new contents
	// of the destination register.
	BetaHDReg float64
	// GammaHWInstr scales the Hamming weight of the executing instruction
	// word, making distinct code paths distinguishable (V1).
	GammaHWInstr float64
	// DeltaHDBus scales the Hamming distance on memory writes (old vs new
	// memory word), the term the negation store leaks through (V3).
	DeltaHDBus float64
	// NoiseSigma is the standard deviation of the additive Gaussian
	// measurement noise per sample.
	NoiseSigma float64
	// BitWeights are per-bit-line contributions to the data-dependent
	// terms: real buses have unequal line capacitances, which is what lets
	// a template attack separate values of equal Hamming weight. A zero
	// value means "uniform weights".
	BitWeights [32]float64
	// PortBase, PortSize delimit a memory-mapped region whose accesses
	// draw a large spike (the Gaussian-sampler port; reproduces the
	// distinctive peaks of Fig. 3a the attacker segments by).
	PortBase, PortSize uint32
	// PortSpike is the extra power on a port access.
	PortSpike float64
}

// DefaultModel returns the device profile used throughout the reproduction.
// The coefficients are arbitrary but fixed: the attack never uses them
// directly, it learns templates from profiling traces like the paper does.
func DefaultModel() *Model {
	m := &Model{
		Base: map[rv32.Class]float64{
			rv32.ClassALU:    1.00,
			rv32.ClassALUImm: 0.95,
			rv32.ClassBranch: 1.20,
			rv32.ClassJump:   1.30,
			rv32.ClassLoad:   1.60,
			rv32.ClassStore:  1.75,
			rv32.ClassMulDiv: 2.10,
			rv32.ClassSystem: 0.90,
		},
		AlphaHWData:  0.085,
		BetaHDReg:    0.018,
		GammaHWInstr: 0.020,
		DeltaHDBus:   0.060,
		NoiseSigma:   0.015,
		PortBase:     0xffff0000,
		PortSize:     0x100,
		PortSpike:    10.0,
	}
	// Deterministic ±18% spread across bit lines (SplitMix64 of the bit
	// index), fixed per device like physical line capacitances are.
	for b := range m.BitWeights {
		z := uint64(b)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 30)) * 0x94d049bb133111eb
		z ^= z >> 31
		frac := float64(z>>11) / (1 << 53) // [0,1)
		m.BitWeights[b] = 1 + 0.36*(frac-0.5)
	}
	return m
}

// weightedHW returns the bit-weighted Hamming weight of v.
func (m *Model) weightedHW(v uint32) float64 {
	uniform := true
	for _, w := range m.BitWeights {
		if w != 0 {
			uniform = false
			break
		}
	}
	if uniform {
		return float64(bits.OnesCount32(v))
	}
	sum := 0.0
	for b := 0; v != 0; b++ {
		if v&1 == 1 {
			sum += m.BitWeights[b]
		}
		v >>= 1
	}
	return sum
}

// Validate reports configuration errors.
func (m *Model) Validate() error {
	if m.NoiseSigma < 0 {
		return fmt.Errorf("power: negative noise sigma %v", m.NoiseSigma)
	}
	if len(m.Base) == 0 {
		return fmt.Errorf("power: no base costs configured")
	}
	return nil
}

// Synthesizer accumulates events from a CPU run and renders the trace.
type Synthesizer struct {
	model *Model
	prng  sampler.PRNG

	samples []float64
	// starts[i] is the sample index at which event i began (cycle-aligned,
	// one sample per cycle).
	starts []int
	events []rv32.Event
}

// NewSynthesizer creates a trace synthesizer with the given noise PRNG.
func NewSynthesizer(model *Model, prng sampler.PRNG) (*Synthesizer, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Synthesizer{model: model, prng: prng}, nil
}

// HandleEvent renders one event into power samples; wire it to
// rv32.CPU.OnEvent.
func (s *Synthesizer) HandleEvent(e rv32.Event) {
	m := s.model
	base := m.Base[e.Instr.Op.Class()]
	instrHW := float64(bits.OnesCount32(e.Instr.Raw)) * m.GammaHWInstr

	s.starts = append(s.starts, len(s.samples))
	s.events = append(s.events, e)

	isPort := e.MemAccess && e.MemAddr >= m.PortBase && e.MemAddr < m.PortBase+m.PortSize

	for c := 0; c < e.Cycles; c++ {
		p := base + instrHW
		switch {
		case c == e.Cycles-1:
			// Write-back cycle: data-dependent terms.
			if e.RegWrite {
				p += m.weightedHW(e.RegNew) * m.AlphaHWData
				p += float64(bits.OnesCount32(e.RegOld^e.RegNew)) * m.BetaHDReg
			}
			if e.MemWrite {
				p += m.weightedHW(e.MemValue) * m.AlphaHWData
				p += m.weightedHW(e.MemOld^e.MemValue) * m.DeltaHDBus
			}
		case c == 0 && isPort:
			p += m.PortSpike
		}
		if isPort && c > 0 && c < e.Cycles-1 {
			// Port wait states burn extra current (sampler logic active),
			// well below the access spike so peak detection stays clean.
			p += m.PortSpike * 0.15
		}
		noise, _ := sampler.NormFloat64(s.prng)
		s.samples = append(s.samples, p+noise*m.NoiseSigma)
	}
}

// Samples returns the rendered power trace (one sample per cycle).
func (s *Synthesizer) Samples() []float64 {
	out := make([]float64, len(s.samples))
	copy(out, s.samples)
	return out
}

// Events returns the recorded event list (aligned with Starts).
func (s *Synthesizer) Events() []rv32.Event { return s.events }

// Starts returns the sample index at which each event began.
func (s *Synthesizer) Starts() []int { return s.starts }

// Reset clears accumulated samples and events for reuse.
func (s *Synthesizer) Reset() {
	s.samples = s.samples[:0]
	s.starts = s.starts[:0]
	s.events = s.events[:0]
}

// HWByte returns the Hamming weight of the low byte of v; exposed for
// leakage-model analysis in tests and ablations.
func HWByte(v uint32) int { return bits.OnesCount8(uint8(v)) }

// HW32 returns the 32-bit Hamming weight.
func HW32(v uint32) int { return bits.OnesCount32(v) }
