// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus the ablations DESIGN.md calls out. Each
// benchmark reports its headline numbers via b.ReportMetric so a bench run
// regenerates the rows the paper prints:
//
//	go test -bench=Table -benchmem .
//	go test -bench=Ablation .
package reveal

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"reveal/internal/bfv"
	"reveal/internal/core"
	"reveal/internal/dbdd"
	"reveal/internal/experiments"
	"reveal/internal/sampler"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// Shared sessions: profiling is expensive, so each device profile is built
// once per bench binary run.
var (
	onceDefault    sync.Once
	defaultSession *experiments.Session
	onceLowNoise   sync.Once
	lowNoiseSess   *experiments.Session
)

func getDefaultSession(b *testing.B) *experiments.Session {
	b.Helper()
	onceDefault.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.AttackEncryptions = 1
		s, err := experiments.NewSession(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defaultSession = s
	})
	if defaultSession == nil {
		b.Fatal("default session failed to build")
	}
	return defaultSession
}

func getLowNoiseSession(b *testing.B) *experiments.Session {
	b.Helper()
	onceLowNoise.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.LowNoise = true
		cfg.AttackEncryptions = 1
		s, err := experiments.NewSession(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lowNoiseSess = s
	})
	if lowNoiseSess == nil {
		b.Fatal("low-noise session failed to build")
	}
	return lowNoiseSess
}

// BenchmarkTable1TemplateAttack regenerates Table I: one single-trace
// attack per iteration, reporting sign/zero/overall accuracy.
func BenchmarkTable1TemplateAttack(b *testing.B) {
	s := getDefaultSession(b)
	br := snapshotBench(b)
	b.ResetTimer()
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := s.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	br.Metric(100*last.SignAccuracy, "sign-acc-%")
	br.Metric(100*last.ZeroAccuracy, "zero-acc-%")
	br.Metric(100*last.Confusion.OverallAccuracy(), "value-acc-%")
}

// BenchmarkTable2HintProbabilities regenerates Table II: probability rows
// with centered mean and variance for secrets in [-2, 2].
func BenchmarkTable2HintProbabilities(b *testing.B) {
	s := getLowNoiseSession(b)
	t1, err := s.RunTable1()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunTable2(t1.LastOutcome.E2, t1.LastCapture.Truth.E2)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Mean posterior on the truth across the five rows.
	sum := 0.0
	for _, r := range rows {
		sum += r.Probs[r.Secret]
	}
	b.ReportMetric(sum/float64(len(rows)), "mean-truth-posterior")
}

// BenchmarkTable3FullHints regenerates Table III: bikz without and with
// the attack's full hints.
func BenchmarkTable3FullHints(b *testing.B) {
	s := getLowNoiseSession(b)
	t1, err := s.RunTable1()
	if err != nil {
		b.Fatal(err)
	}
	br := snapshotBench(b)
	b.ResetTimer()
	var r *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunTable3(s.Params, t1.LastOutcome.E2)
		if err != nil {
			b.Fatal(err)
		}
	}
	br.Metric(r.WithoutHintsBikz, "bikz-no-hints")
	br.Metric(r.WithHintsBikz, "bikz-with-hints")
	br.Metric(r.WithHintsBits, "bits-with-hints")
}

// BenchmarkTable4SignOnlyHints regenerates Table IV: the branch-only
// adversary plus one guess.
func BenchmarkTable4SignOnlyHints(b *testing.B) {
	s := getDefaultSession(b)
	t1, err := s.RunTable1()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var r *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunTable4(s.Params, t1.LastOutcome.E2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.WithHintsBikz, "bikz-sign-hints")
	b.ReportMetric(r.WithGuessesBikz, "bikz-with-guess")
	b.ReportMetric(100*r.SuccessProbability, "guess-success-%")
}

// BenchmarkFig3SegmentTrace regenerates Fig. 3: capture a three-coefficient
// trace and segment it by the sampler peaks.
func BenchmarkFig3SegmentTrace(b *testing.B) {
	var r *experiments.Fig3Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunFig3(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.PeakCount), "peaks")
	b.ReportMetric(float64(len(r.Full)), "samples")
}

// BenchmarkEndToEndAttack is the headline pipeline: capture one encryption,
// classify every coefficient from the single trace, repair, and recover
// the plaintext.
func BenchmarkEndToEndAttack(b *testing.B) {
	s := getLowNoiseSession(b)
	br := snapshotBench(b)
	recovered := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt := s.Params.NewPlaintext()
		pt.Coeffs[0] = uint64(i) % s.Params.T
		cap, err := core.CaptureEncryption(s.Device, s.Params, s.Encryptor, pt)
		if err != nil {
			b.Fatal(err)
		}
		out, err := s.Classifier.Attack(cap, s.Params.N)
		if err != nil {
			b.Fatal(err)
		}
		got, _, _, err := core.RepairAndRecover(s.Params, s.PublicKey, cap.Ciphertext, out.E2, 16, 100000)
		if err != nil {
			continue
		}
		if got.Coeffs[0] == pt.Coeffs[0] {
			recovered++
		}
	}
	br.Metric(100*float64(recovered)/float64(b.N), "recovery-%")
}

// BenchmarkAblationV2Only quantifies the paper's V3 claim: negative
// coefficients (which additionally leak through the negation, V3) must be
// classified better than positives (V2 only).
func BenchmarkAblationV2Only(b *testing.B) {
	s := getDefaultSession(b)
	var negAcc, posAcc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		var nSum, pSum float64
		var nN, pN int
		for v := 1; v <= 7; v++ {
			if r.Confusion.Total(v) > 5 {
				pSum += r.Confusion.Accuracy(v)
				pN++
			}
			if r.Confusion.Total(-v) > 5 {
				nSum += r.Confusion.Accuracy(-v)
				nN++
			}
		}
		if pN > 0 {
			posAcc = pSum / float64(pN)
		}
		if nN > 0 {
			negAcc = nSum / float64(nN)
		}
	}
	b.ReportMetric(100*negAcc, "neg-acc-%(V2+V3)")
	b.ReportMetric(100*posAcc, "pos-acc-%(V2-only)")
}

// BenchmarkAblationPOI sweeps the number of points of interest, the
// template practicality knob of §III-D.
func BenchmarkAblationPOI(b *testing.B) {
	for _, pois := range []int{4, 12, 28} {
		b.Run(map[int]string{4: "poi4", 12: "poi12", 28: "poi28"}[pois], func(b *testing.B) {
			dev := core.NewDevice(21)
			opts := core.DefaultProfileOptions()
			opts.Templates.POICount = pois
			opts.Templates.MinSpacing = 1
			cls, err := core.Profile(dev, opts)
			if err != nil {
				b.Fatal(err)
			}
			params := bfv.PaperParameters()
			prng := sampler.NewXoshiro256(22)
			kg := bfv.NewKeyGenerator(params, prng)
			sk := kg.GenSecretKey()
			pk := kg.GenPublicKey(sk)
			_ = sk
			enc := bfv.NewEncryptor(params, pk, prng)
			var acc float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cap, err := core.CaptureEncryption(dev, params, enc, params.NewPlaintext())
				if err != nil {
					b.Fatal(err)
				}
				out, err := cls.Attack(cap, params.N)
				if err != nil {
					b.Fatal(err)
				}
				acc, _, err = out.E2.Accuracy(cap.Truth.E2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*acc, "value-acc-%")
		})
	}
}

// BenchmarkAblationNoiseSweep sweeps measurement noise: template accuracy
// versus acquisition quality.
func BenchmarkAblationNoiseSweep(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		sigma float64
	}{{"noise0p002", 0.002}, {"noise0p015", 0.015}, {"noise0p05", 0.05}} {
		b.Run(cfg.name, func(b *testing.B) {
			dev := core.NewDevice(23)
			dev.Model.NoiseSigma = cfg.sigma
			cls, err := core.Profile(dev, core.DefaultProfileOptions())
			if err != nil {
				b.Fatal(err)
			}
			params := bfv.PaperParameters()
			prng := sampler.NewXoshiro256(24)
			kg := bfv.NewKeyGenerator(params, prng)
			sk := kg.GenSecretKey()
			pk := kg.GenPublicKey(sk)
			_ = sk
			enc := bfv.NewEncryptor(params, pk, prng)
			var acc float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cap, err := core.CaptureEncryption(dev, params, enc, params.NewPlaintext())
				if err != nil {
					b.Fatal(err)
				}
				out, err := cls.Attack(cap, params.N)
				if err != nil {
					b.Fatal(err)
				}
				acc, _, err = out.E2.Accuracy(cap.Truth.E2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*acc, "value-acc-%")
		})
	}
}

// BenchmarkAblationShuffling measures the shuffling countermeasure:
// positional accuracy collapses while multiset accuracy survives.
func BenchmarkAblationShuffling(b *testing.B) {
	s := getDefaultSession(b)
	const n = 256
	src, err := core.FirmwareSource(n+1, bfv.PaperQ)
	if err != nil {
		b.Fatal(err)
	}
	fw, err := core.AssembleFirmware(src)
	if err != nil {
		b.Fatal(err)
	}
	cn := sampler.DefaultClippedNormal()
	var ev *core.ShuffleEvaluation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prng := sampler.NewXoshiro256(uint64(i) + 31)
		values, metas := cn.SamplePoly(prng, n)
		values = append(values, 0)
		metas = append(metas, sampler.SampleMeta{})
		tr, perm, err := core.CaptureShuffled(s.Device, fw, values, metas, sampler.NewXoshiro256(uint64(i)+63))
		if err != nil {
			b.Fatal(err)
		}
		ev, err = core.EvaluateShuffledAttack(s.Classifier, tr, values, perm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*ev.PositionalAccuracy, "positional-acc-%")
	b.ReportMetric(100*ev.MultisetAccuracy, "multiset-acc-%")
}

// BenchmarkAblationPatchedSampler runs the attack against the SEAL
// v3.6-style branch-free kernel: the branch classifier must collapse.
func BenchmarkAblationPatchedSampler(b *testing.B) {
	s := getDefaultSession(b)
	const n = 256
	src, err := core.FirmwareBranchless(n+1, bfv.PaperQ)
	if err != nil {
		b.Fatal(err)
	}
	fw, err := core.AssembleFirmware(src)
	if err != nil {
		b.Fatal(err)
	}
	cn := sampler.DefaultClippedNormal()
	var signAcc float64
	attacked := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prng := sampler.NewXoshiro256(uint64(i) + 91)
		values, metas := cn.SamplePoly(prng, n)
		values = append(values, 0)
		metas = append(metas, sampler.SampleMeta{})
		tr, err := s.Device.Capture(fw, values, metas)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Classifier.AttackTrace(tr, n+1)
		if err != nil {
			// Segmentation failure against the patched kernel counts as a
			// defense win; score as zero accuracy.
			signAcc = 0
			continue
		}
		attacked++
		ok := 0
		for j := 0; j < n; j++ {
			if res.Signs[j] == sca.SignOf(int(values[j])) {
				ok++
			}
		}
		signAcc = float64(ok) / float64(n)
	}
	b.ReportMetric(100*signAcc, "sign-acc-%")
	b.ReportMetric(float64(attacked), "segmentable-runs")
}

// BenchmarkBFVEncrypt and friends benchmark the substrate itself.
func BenchmarkBFVEncrypt(b *testing.B) {
	params := bfv.PaperParameters()
	prng := sampler.NewXoshiro256(41)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, prng)
	pt := params.NewPlaintext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encrypt(pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceCapture measures the ISS + power synthesis throughput for
// a full 1024-coefficient sampling run.
func BenchmarkDeviceCapture(b *testing.B) {
	br := snapshotBench(b)
	dev := core.NewDevice(51)
	src, err := core.FirmwareSource(1024, bfv.PaperQ)
	if err != nil {
		b.Fatal(err)
	}
	fw, err := core.AssembleFirmware(src)
	if err != nil {
		b.Fatal(err)
	}
	cn := sampler.DefaultClippedNormal()
	values, metas := cn.SamplePoly(sampler.NewXoshiro256(52), 1024)
	var tr trace.Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err = dev.Capture(fw, values, metas)
		if err != nil {
			b.Fatal(err)
		}
	}
	br.Metric(float64(len(tr)), "samples")
}

// BenchmarkDBDDFullPipeline measures the estimator cost at paper scale.
func BenchmarkDBDDFullPipeline(b *testing.B) {
	snapshotBench(b)
	for i := 0; i < b.N; i++ {
		in, err := dbdd.NewLWEInstance(1024, 1024, 132120577, 2.0/3.0, 3.2*3.2)
		if err != nil {
			b.Fatal(err)
		}
		for c := 1024; c < 2048; c++ {
			if err := in.PerfectHint(c, 0); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := in.EstimateBikz(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCrossDevice measures template portability: profiling on
// one device, attacking a process-variation sibling (§V-B of the paper).
func BenchmarkAblationCrossDevice(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.AttackEncryptions = 1
	var res *experiments.CrossDeviceResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunCrossDevice(cfg, 0.25)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.SameDeviceValueAcc, "same-device-acc-%")
	b.ReportMetric(100*res.CrossDeviceValueAcc, "cross-device-acc-%")
}

// BenchmarkTVLA measures the fixed-vs-random leakage assessment of the
// vulnerable kernel.
func BenchmarkTVLA(b *testing.B) {
	dev := core.NewDevice(61)
	var res *core.TVLAResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.RunTVLA(dev, bfv.PaperQ, 5, 60, false, uint64(i)+62)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MaxT, "max-t")
}

// BenchmarkSecuritySweep estimates the attack across every SEAL default
// degree (the paper's "applicable to all security levels" claim).
func BenchmarkSecuritySweep(b *testing.B) {
	br := snapshotBench(b)
	var rows []experiments.SweepRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunSecuritySweep([]int{1024, 2048, 4096, 8192, 16384, 32768}, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	br.Metric(rows[0].FullHintsBikz, "n1024-full-bikz")
	br.Metric(rows[len(rows)-1].FullHintsBikz, "n32768-full-bikz")
}

// BenchmarkDecryptionCPA runs the multi-trace decryption-side key recovery
// (the §II-B extension).
func BenchmarkDecryptionCPA(b *testing.B) {
	dev := core.NewDevice(71)
	sk := sampler.TernaryPoly(sampler.NewXoshiro256(72), 24)
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := core.RunDecryptionAttack(dev, sk, 12289, 150, uint64(i)+73)
		if err != nil {
			b.Fatal(err)
		}
		rate, err = core.KeyRecoveryRate(res.Recovered, sk)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rate, "key-recovery-%")
}

// BenchmarkAblationMasking evaluates the first-order masked kernel: the
// paper's claim that masking cannot remove the branch leakage.
func BenchmarkAblationMasking(b *testing.B) {
	dev := core.NewDevice(91)
	var ev *core.MaskingEvaluation
	var err error
	for i := 0; i < b.N; i++ {
		ev, err = core.EvaluateMasking(dev, bfv.PaperQ, 40, 128, uint64(i)+92)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*ev.SignAccuracy, "sign-acc-%")
	b.ReportMetric(100*ev.ValueAccuracy, "value-acc-%")
}

// BenchmarkAblationProfilingSize sweeps the profiling-campaign size (the
// paper used 220k executions; how much does scale buy?).
func BenchmarkAblationProfilingSize(b *testing.B) {
	for _, tpv := range []int{10, 40, 120} {
		name := map[int]string{10: "traces10", 40: "traces40", 120: "traces120"}[tpv]
		b.Run(name, func(b *testing.B) {
			dev := core.NewDevice(101)
			opts := core.DefaultProfileOptions()
			opts.TracesPerValue = tpv
			cls, err := core.Profile(dev, opts)
			if err != nil {
				b.Fatal(err)
			}
			params := bfv.PaperParameters()
			prng := sampler.NewXoshiro256(102)
			kg := bfv.NewKeyGenerator(params, prng)
			sk := kg.GenSecretKey()
			pk := kg.GenPublicKey(sk)
			_ = sk
			enc := bfv.NewEncryptor(params, pk, prng)
			var acc float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cap, err := core.CaptureEncryption(dev, params, enc, params.NewPlaintext())
				if err != nil {
					b.Fatal(err)
				}
				out, err := cls.Attack(cap, params.N)
				if err != nil {
					b.Fatal(err)
				}
				acc, _, err = out.E2.Accuracy(cap.Truth.E2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*acc, "value-acc-%")
		})
	}
}

// BenchmarkAblationSecondOrder certifies the masking order of the masked
// kernel: first-order clean on the share region, second-order leaky.
func BenchmarkAblationSecondOrder(b *testing.B) {
	dev := core.NewDevice(111)
	dev.Model.AlphaHWData *= 3
	dev.Model.DeltaHDBus *= 3
	dev.Model.NoiseSigma = 0.005
	dev.Model.PortSpike = 25
	var study *core.SecondOrderStudy
	var err error
	for i := 0; i < b.N; i++ {
		study, err = core.RunSecondOrderStudy(dev, 257, 14, 1500, uint64(i)+112)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(study.FirstOrderMaxT, "first-order-max-t")
	b.ReportMetric(study.SecondOrderMaxT, "second-order-max-t")
}

// attackSegments collects the per-coefficient segments of both error
// polynomials of one captured encryption — the classify-stage workload.
func attackSegments(b *testing.B, s *experiments.Session) []trace.Segment {
	b.Helper()
	pt := s.Params.NewPlaintext()
	cap, err := core.CaptureEncryption(s.Device, s.Params, s.Encryptor, pt)
	if err != nil {
		b.Fatal(err)
	}
	var segs []trace.Segment
	for _, tr := range []trace.Trace{cap.TraceE1, cap.TraceE2} {
		ss, err := trace.SegmentEncryptionTrace(tr, s.Params.N+1, 8)
		if err != nil {
			b.Fatal(err)
		}
		segs = append(segs, ss[:s.Params.N]...)
	}
	return segs
}

// BenchmarkClassifyStage isolates the template-classification hot loop: the
// serial scoring of every per-coefficient segment of one encryption (both
// error polynomials, 2·n coefficients), with capture and segmentation held
// outside the timed region. This is the layer the Gaussian-template scorer
// dominates and the benchmark the perf gate tracks most closely.
func BenchmarkClassifyStage(b *testing.B) {
	s := getDefaultSession(b)
	br := snapshotBench(b)
	segs := attackSegments(b, s)
	ctx := context.Background()
	var res *core.AttackResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = s.Classifier.AttackSegmentsCtx(ctx, segs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(res.Values) != len(segs) {
		b.Fatalf("classified %d of %d segments", len(res.Values), len(segs))
	}
	br.Metric(float64(len(segs)), "coefficients")
	br.Metric(float64(len(segs))/(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e9), "coeffs-per-second")
}

// BenchmarkSegmentStage isolates trace segmentation: cutting one captured
// sampling trace into its per-coefficient sub-traces.
func BenchmarkSegmentStage(b *testing.B) {
	s := getDefaultSession(b)
	br := snapshotBench(b)
	pt := s.Params.NewPlaintext()
	cap, err := core.CaptureEncryption(s.Device, s.Params, s.Encryptor, pt)
	if err != nil {
		b.Fatal(err)
	}
	var segs []trace.Segment
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		segs, err = trace.SegmentEncryptionTrace(cap.TraceE2, s.Params.N+1, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	br.Metric(float64(len(segs)), "segments")
}

// BenchmarkParallelClassification measures the sharded worker-pool
// classification of a Table-1-sized campaign (both error polynomials of
// one encryption, 2·n coefficients) against the serial loop, verifying the
// outputs are identical. The speedup scales with available cores; the
// snapshot records the worker count so runs on different hardware stay
// comparable.
func BenchmarkParallelClassification(b *testing.B) {
	s := getDefaultSession(b)
	br := snapshotBench(b)
	segs := attackSegments(b, s)
	ctx := context.Background()
	workers := runtime.GOMAXPROCS(0)

	// Serial baseline, best of two runs (outside the timed region).
	var serial *core.AttackResult
	var err error
	serialDur := time.Duration(1<<62 - 1)
	for rep := 0; rep < 2; rep++ {
		t0 := time.Now()
		serial, err = s.Classifier.AttackSegmentsCtx(ctx, segs)
		if err != nil {
			b.Fatal(err)
		}
		if d := time.Since(t0); d < serialDur {
			serialDur = d
		}
	}

	b.ResetTimer()
	var par *core.AttackResult
	for i := 0; i < b.N; i++ {
		par, err = s.Classifier.AttackSegmentsParallel(ctx, segs, workers)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !reflect.DeepEqual(serial.Values, par.Values) ||
		!reflect.DeepEqual(serial.Signs, par.Signs) ||
		!reflect.DeepEqual(serial.Probs, par.Probs) {
		b.Fatal("parallel classification diverged from serial")
	}
	parDur := time.Duration(int64(b.Elapsed()) / int64(b.N))
	br.Metric(float64(workers), "workers")
	br.Metric(float64(len(segs)), "coefficients")
	br.Metric(float64(serialDur.Microseconds())/1000, "serial-ms")
	br.Metric(float64(parDur.Microseconds())/1000, "parallel-ms")
	br.Metric(float64(serialDur)/float64(parDur), "speedup-x")
}
