module reveal

go 1.22
