// Benchmark snapshots: key benchmarks persist their results as
// BENCH_<name>.json files so runs can be diffed across commits without
// re-parsing `go test -bench` output. Each snapshot carries ns/op, the
// benchmark's headline metrics, and the per-stage breakdown collected by a
// recorder installed for the duration of the benchmark.
//
// The output directory defaults to bench_snapshots/ and can be moved with
// BENCH_SNAPSHOT_DIR. Plain `go test` runs no benchmarks and writes nothing.
package reveal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reveal/internal/obs"
)

type benchSnapshot struct {
	Name           string             `json:"name"`
	Iterations     int                `json:"iterations"`
	NsPerOp        float64            `json:"ns_per_op"`
	ItemsPerSecond float64            `json:"items_per_second,omitempty"`
	Metrics        map[string]float64 `json:"metrics,omitempty"`
	Stages         []obs.StageStats   `json:"stages,omitempty"`
}

// benchRun captures one benchmark's stage activity and metrics, and writes
// the snapshot file when the benchmark finishes.
type benchRun struct {
	b       *testing.B
	rec     *obs.Recorder
	prev    *obs.Recorder
	metrics map[string]float64
}

// snapshotBench installs a fresh metrics recorder for the calling benchmark
// and schedules the BENCH_<name>.json write at cleanup. The previous global
// recorder (normally nil) is restored afterwards, so instrumented and
// uninstrumented benchmarks can coexist in one run.
func snapshotBench(b *testing.B) *benchRun {
	b.Helper()
	br := &benchRun{
		b:       b,
		rec:     obs.New(obs.Options{}),
		prev:    obs.Global(),
		metrics: map[string]float64{},
	}
	obs.SetGlobal(br.rec)
	b.Cleanup(br.finish)
	return br
}

// Metric reports v through the normal benchmark output and records it into
// the snapshot.
func (br *benchRun) Metric(v float64, name string) {
	br.b.ReportMetric(v, name)
	br.metrics[name] = v
}

func (br *benchRun) finish() {
	obs.SetGlobal(br.prev)
	if br.b.Failed() || br.b.N == 0 {
		return
	}
	snap := benchSnapshot{
		Name:       strings.TrimPrefix(br.b.Name(), "Benchmark"),
		Iterations: br.b.N,
		NsPerOp:    float64(br.b.Elapsed().Nanoseconds()) / float64(br.b.N),
		Metrics:    br.metrics,
		Stages:     br.rec.StageStats(),
	}
	var items int64
	for _, st := range snap.Stages {
		items += st.Items
	}
	if secs := br.b.Elapsed().Seconds(); items > 0 && secs > 0 {
		snap.ItemsPerSecond = float64(items) / secs
	}
	if err := writeBenchSnapshot(snap); err != nil {
		br.b.Logf("bench snapshot: %v", err)
	}
}

func writeBenchSnapshot(snap benchSnapshot) error {
	dir := os.Getenv("BENCH_SNAPSHOT_DIR")
	if dir == "" {
		dir = "bench_snapshots"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ReplaceAll(snap.Name, "/", "_")
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", name))
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
