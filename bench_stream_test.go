package reveal

import (
	"bytes"
	"io"
	"testing"

	"reveal/internal/core"
	"reveal/internal/trace"
)

// BenchmarkStream measures the streaming attack engine end to end: one
// pre-captured e2 trace is serialized to the RVTS wire format once, and
// each iteration replays the wire chunk by chunk through
// trace.StreamReader into core.StreamAttack — the exact path a live
// acquisition feed takes. Reported metrics: traces/sec, MB/s of wire
// ingest, and the mean time-to-first-hint latency in nanoseconds.
func BenchmarkStream(b *testing.B) {
	s := getLowNoiseSession(b)
	pt := s.Params.NewPlaintext()
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64(i*31) % s.Params.T
	}
	cap, err := core.CaptureEncryption(s.Device, s.Params, s.Encryptor, pt)
	if err != nil {
		b.Fatal(err)
	}
	var wire bytes.Buffer
	if err := trace.WriteSet(&wire, &trace.Set{
		Traces: []trace.Trace{cap.TraceE2}, Labels: []int{0},
	}); err != nil {
		b.Fatal(err)
	}
	br := snapshotBench(b)
	const chunkSamples = 4096
	var ingested int64
	var ttfhSum float64
	b.SetBytes(int64(wire.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reader, err := trace.NewStreamReader(bytes.NewReader(wire.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		sa, err := core.NewStreamAttack(s.Classifier, core.StreamAttackOptions{
			Coefficients: s.Params.N,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := reader.NextTrace(); err != nil {
			b.Fatal(err)
		}
		for {
			n, err := reader.ReadChunk(sa.Window(chunkSamples))
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			if err := sa.Commit(n); err != nil {
				b.Fatal(err)
			}
		}
		_, verdict, err := sa.Finish()
		if err != nil {
			b.Fatal(err)
		}
		if verdict.Classified != s.Params.N {
			b.Fatalf("classified %d of %d coefficients", verdict.Classified, s.Params.N)
		}
		ingested += reader.BytesRead()
		ttfhSum += float64(verdict.TimeToFirstHint.Nanoseconds())
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		br.Metric(float64(b.N)/secs, "traces_per_second")
		br.Metric(float64(ingested)/secs/1e6, "mb_ingest_per_second")
	}
	br.Metric(ttfhSum/float64(b.N), "time_to_first_hint_ns")
}
