// Package reveal is a from-scratch Go reproduction of "RevEAL:
// Single-Trace Side-Channel Leakage of the SEAL Homomorphic Encryption
// Library" (DATE 2022): a BFV homomorphic encryption library with SEAL
// v3.2 semantics, an RV32IM device simulator with a power-leakage model,
// the single-trace template attack on the Gaussian sampler, a lattice
// reduction toolbox, and the DBDD "LWE with side information" security
// estimator that reproduces the paper's Tables I-IV and Fig. 3.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for measured
// versus published numbers, and the examples/ directory for runnable
// walkthroughs. The benchmark harness in bench_test.go regenerates every
// table and figure.
package reveal
