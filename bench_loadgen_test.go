// BenchmarkLoadgen measures sustained campaign throughput through the
// service API under synthetic multi-tenant load, in two topologies built
// in-process: a single-process daemon (queue + local pool) and a fabric of
// one pure coordinator with two worker nodes leasing over HTTP. The fabric
// run is the timed headline; the single-process run is recorded alongside
// it as the scale-out reference. Sleep campaigns keep the measurement on
// the queue/fabric machinery rather than the classifier.
package reveal

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"reveal/internal/core"
	"reveal/internal/jobs"
	"reveal/internal/service"
)

// loadTopology is one service deployment under test plus its teardown.
type loadTopology struct {
	client *service.Client
	stop   func()
}

// startTopology boots a coordinator with poolWorkers in-process slots
// (negative = pure coordinator) and fabricWorkers × slotsPerWorker fabric
// nodes leasing from it over a real HTTP listener.
func startTopology(b *testing.B, poolWorkers, fabricWorkers, slotsPerWorker int) *loadTopology {
	b.Helper()
	svc := service.New(service.Config{
		PoolWorkers: poolWorkers,
		QueueOptions: jobs.Options{
			MaxAttempts: 3,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  40 * time.Millisecond,
		},
	})
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	client := service.NewClient(ts.URL)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{}, fabricWorkers)
	for i := 0; i < fabricWorkers; i++ {
		w := &service.FabricWorker{
			ID:       "bench-worker-" + string(rune('a'+i)),
			Client:   service.NewClient(ts.URL),
			Runner:   &service.Runner{Cache: core.NewTemplateCache(2), Workers: 1},
			Slots:    slotsPerWorker,
			LeaseTTL: 500 * time.Millisecond,
			PollWait: 100 * time.Millisecond,
		}
		go func() {
			_ = w.Run(ctx)
			done <- struct{}{}
		}()
	}
	return &loadTopology{
		client: client,
		stop: func() {
			cancel()
			for i := 0; i < fabricWorkers; i++ {
				<-done
			}
			ts.Close()
			sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer scancel()
			_ = svc.Shutdown(sctx)
		},
	}
}

// loadgenRound drives one fixed synthetic load through the topology.
func loadgenRound(b *testing.B, top *loadTopology) *service.LoadgenReport {
	b.Helper()
	rep, err := service.RunLoadgen(context.Background(), top.client, service.LoadgenOptions{
		Tenants:     4,
		Jobs:        48,
		Concurrency: 8,
		SleepMS:     20,
		Poll:        5 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Failed > 0 {
		b.Fatalf("loadgen: %d jobs failed", rep.Failed)
	}
	return rep
}

func BenchmarkLoadgen(b *testing.B) {
	br := snapshotBench(b)

	// Untimed reference: the same load through one process with two
	// execution slots and no fabric.
	single := startTopology(b, 2, 0, 0)
	singleRep := loadgenRound(b, single)
	single.stop()

	// Timed: a pure coordinator with two fabric workers × two slots each —
	// the smallest deployment where scale-out should beat scale-up.
	fabric := startTopology(b, -1, 2, 2)
	defer fabric.stop()
	b.ResetTimer()
	var rep *service.LoadgenReport
	for i := 0; i < b.N; i++ {
		rep = loadgenRound(b, fabric)
	}
	b.StopTimer()

	for name, v := range rep.BenchMetrics() {
		br.Metric(v, name)
	}
	br.Metric(singleRep.JobsPerSecond, "single_process_jobs_per_sec")
	// The scale-out acceptance bar: with twice the execution slots the
	// fabric must sustain more jobs/sec than the single process, HTTP
	// lease overhead included. The margin is far under the 2x slot ratio
	// to stay robust on loaded CI runners.
	if rep.JobsPerSecond <= singleRep.JobsPerSecond {
		b.Errorf("fabric throughput %.1f jobs/sec did not beat single-process %.1f",
			rep.JobsPerSecond, singleRep.JobsPerSecond)
	}
}
