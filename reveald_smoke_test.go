// Service observability smoke test: boots the reveald stack in-process —
// recorder with journal and tracing, service, instrumented listener — and
// validates the operational surface end to end: a traced submission, a
// /metrics scrape that must parse as a real Prometheus exposition with the
// per-route and per-kind series, the /events journal, the events.jsonl
// sink, and the /readyz drain flip.
package reveal

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"reveal/internal/jobs"
	"reveal/internal/obs"
	"reveal/internal/service"
)

func TestRevealdServiceSmoke(t *testing.T) {
	// The root test binary shares its process with the bench and examples
	// smoke tests; the global recorder must be restored whatever happens.
	rec := obs.New(obs.Options{
		TraceCapacity: obs.DefaultTraceCapacity,
		TraceRing:     true,
		EventCapacity: 1024,
	})
	prev := obs.Global()
	obs.SetGlobal(rec)
	defer obs.SetGlobal(prev)

	dataDir := t.TempDir()
	eventsFile, err := os.OpenFile(filepath.Join(dataDir, "events.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	rec.Events().AttachSink(eventsFile)
	defer eventsFile.Close()

	svc := service.New(service.Config{
		QueueOptions: jobs.Options{MaxAttempts: 2, BackoffBase: 5 * time.Millisecond, BackoffMax: 40 * time.Millisecond},
		PoolWorkers:  1,
		DataDir:      dataDir,
	})
	var draining atomic.Bool
	srv, err := obs.ServeMetricsCfg(rec, "127.0.0.1:0", obs.ServeConfig{
		API:        svc.Handler(),
		APIRoute:   service.RouteLabel,
		Instrument: true,
		Ready: func(context.Context) error {
			if draining.Load() {
				return errors.New("draining")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()
	base := "http://" + srv.Addr()

	// Ready before drain.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d before drain", resp.StatusCode)
	}

	// Submit a traced sleep campaign exactly as revealctl would.
	const traceID = "smoke-trace-0001"
	spec, err := json.Marshal(map[string]any{"kind": "sleep", "sleep_ms": 10, "tenant": "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/api/v1/campaigns", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		Job jobs.Status `json:"job"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.Header.Get(obs.TraceHeader) != traceID {
		t.Fatalf("trace header not echoed: %q", sresp.Header.Get(obs.TraceHeader))
	}
	if submitted.Job.TraceID != traceID {
		t.Fatalf("job trace = %q, want %q", submitted.Job.TraceID, traceID)
	}

	client := service.NewClient(base)
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := client.WaitDone(waitCtx, submitted.Job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone || done.TraceID != traceID {
		t.Fatalf("campaign ended %+v", done)
	}

	// The /metrics scrape must be a valid exposition carrying the per-route
	// HTTP series and the per-kind queue histograms.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	pm, err := obs.ParsePrometheusText(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("/metrics is not a valid Prometheus exposition: %v\n%s", err, raw)
	}
	if v, ok := pm.Value(obs.LabelKey(obs.MetricHTTPRequests, "route", "/api/v1/campaigns")); !ok || v < 1 {
		t.Errorf("per-route request counter missing or zero: %v, %v", v, ok)
	}
	if v, ok := pm.Value(`reveal_jobs_queue_wait_seconds_count{kind="sleep"}`); !ok || v != 1 {
		t.Errorf("per-kind queue-wait histogram = %v, %v; want 1 observation", v, ok)
	}
	if v, ok := pm.Value(obs.LabelKey(jobs.MetricJobsTotal, "state", "done")); !ok || v != 1 {
		t.Errorf("jobs done counter = %v, %v; want 1", v, ok)
	}
	if v, ok := pm.Value(obs.LabelKey(jobs.MetricTenantJobs, "tenant", "smoke")); !ok || v != 1 {
		t.Errorf("tenant counter = %v, %v; want 1", v, ok)
	}
	if !pm.HasMetric(obs.MetricServiceEvents) {
		t.Error("journal counter missing from /metrics")
	}

	// The /events journal serves the traced lifecycle.
	eresp, err := http.Get(base + "/events?max=256")
	if err != nil {
		t.Fatal(err)
	}
	var events obs.EventsResponse
	if err := json.NewDecoder(eresp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	eresp.Body.Close()
	sawFinished := false
	for _, ev := range events.Events {
		if ev.Type == obs.EventJobFinished && ev.TraceID == traceID {
			sawFinished = true
		}
	}
	if !sawFinished {
		t.Fatalf("/events missing the traced job_finished event: %+v", events.Events)
	}

	// Drain: /readyz flips to 503 while /healthz stays alive, mirroring the
	// daemon's SIGTERM sequence.
	draining.Store(true)
	rresp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", rresp.StatusCode)
	}
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200", hresp.StatusCode)
	}

	// events.jsonl received the same journal through the async sink.
	rec.Events().CloseSink()
	sinkData, err := os.ReadFile(filepath.Join(dataDir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines, traced := 0, false
	sc := bufio.NewScanner(bytes.NewReader(sinkData))
	for sc.Scan() {
		var ev obs.ServiceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("events.jsonl line %d invalid: %v", lines+1, err)
		}
		lines++
		if ev.TraceID == traceID {
			traced = true
		}
	}
	if lines == 0 || !traced {
		t.Fatalf("events.jsonl lines=%d traced=%v:\n%s", lines, traced, sinkData)
	}
	if !strings.Contains(string(sinkData), `"type":"job_submitted"`) {
		t.Error("events.jsonl missing the submission record")
	}
}
