// Ring-backend benchmarks gated by scripts/bench_gate.sh: the production
// NTT and RNS pointwise multiply at a real ladder parameter set, and the
// trace-generation path over a wide ladder modulus. Each snapshots into
// bench_snapshots/ and is compared against its committed baseline in CI.
package reveal

import (
	"testing"

	"reveal/internal/core"
	"reveal/internal/ring"
	"reveal/internal/sampler"
	"reveal/internal/testkit"
)

// benchLadderCtx builds the n=4096 ladder ring (three-prime chain) on the
// named backend — large enough that lazy reduction and Barrett dominate,
// small enough for a stable -benchtime 1x CI run.
func benchLadderCtx(b *testing.B, backend string) *ring.Context {
	b.Helper()
	params := ring.ParamsN4096()
	ctx, err := ring.NewContextFor(params, backend)
	if err != nil {
		b.Fatal(err)
	}
	return ctx
}

// BenchmarkNTT measures one forward+inverse transform of a full RNS poly
// (n=4096, three primes) on the production backend, with the reference
// backend's time reported alongside as a metric so the speedup is visible
// in the snapshot.
func BenchmarkNTT(b *testing.B) {
	br := snapshotBench(b)
	ctx := benchLadderCtx(b, ring.RNSBackendName)
	p := testkit.NewRNG(61).Poly(ctx)
	coeffs := float64(ctx.N * ctx.Level())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.NTT(p)
		ctx.INTT(p)
	}
	br.Metric(coeffs, "coeffs_per_op")
}

// BenchmarkNTTReference is the strict-reduction oracle on the same
// workload — the committed baselines document the production speedup.
func BenchmarkNTTReference(b *testing.B) {
	br := snapshotBench(b)
	ctx := benchLadderCtx(b, ring.ReferenceBackendName)
	p := testkit.NewRNG(61).Poly(ctx)
	coeffs := float64(ctx.N * ctx.Level())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.NTT(p)
		ctx.INTT(p)
	}
	br.Metric(coeffs, "coeffs_per_op")
}

// BenchmarkRNSMul measures a full ring product (two forward NTTs, Barrett
// pointwise multiply, one inverse) at n=4096 on the production backend.
func BenchmarkRNSMul(b *testing.B) {
	br := snapshotBench(b)
	ctx := benchLadderCtx(b, ring.RNSBackendName)
	r := testkit.NewRNG(62)
	x, y := r.Poly(ctx), r.Poly(ctx)
	out := ctx.NewPoly()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.MulPoly(x, y, out)
	}
	br.Metric(float64(ctx.N*ctx.Level()), "coeffs_per_op")
}

// BenchmarkTracegen measures the RV32 capture path over a wide (54-bit)
// ladder modulus reduced through FirmwareModulus — the per-trace cost a
// ladder campaign pays at the device layer.
func BenchmarkTracegen(b *testing.B) {
	br := snapshotBench(b)
	const coeffs = 64
	q := ring.ParamsN2048().Moduli[0]
	src, err := core.FirmwareSource(coeffs, core.FirmwareModulus(q))
	if err != nil {
		b.Fatal(err)
	}
	fw, err := core.AssembleFirmware(src)
	if err != nil {
		b.Fatal(err)
	}
	dev := core.NewDevice(63)
	cn := sampler.DefaultClippedNormal()
	values, metas := cn.SamplePoly(sampler.NewXoshiro256(64), coeffs)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		tr, err := dev.Capture(fw, values, metas)
		if err != nil {
			b.Fatal(err)
		}
		n = len(tr)
	}
	br.Metric(float64(n), "samples")
}
