package reveal

import (
	"fmt"
	"testing"

	"reveal/internal/obs/history"
)

// historyBenchRecord fabricates a realistic attack-quality record: ~10
// numeric fields, the shape the service appends per finished campaign.
func historyBenchRecord(i int) history.RunRecord {
	return history.RunRecord{
		Kind:           "attack",
		Tenant:         "bench",
		JobID:          fmt.Sprintf("job-%06d", i),
		Seed:           uint64(i),
		ElapsedSeconds: 2.0 + float64(i%7)*0.01,
		Stages: map[string]float64{
			"queue_wait_seconds": 0.001,
			"profile_seconds":    1.2,
			"attack_seconds":     0.8,
		},
		Metrics: map[string]float64{
			"value_accuracy": 0.95 + float64(i%5)*0.001,
			"sign_accuracy":  0.99,
			"zero_accuracy":  0.97,
			"mean_margin":    0.82,
			"hinted_bikz":    13.7,
		},
	}
}

// BenchmarkHistoryAppend measures the store's append path — JSON encode,
// segment write, index update, rotation and retention — at the default
// segment geometry. One op is one finished campaign's record.
func BenchmarkHistoryAppend(b *testing.B) {
	br := snapshotBench(b)
	s, err := history.Open(history.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(historyBenchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	br.Metric(float64(s.Len()), "records-retained")
	br.Metric(float64(b.N)/b.Elapsed().Seconds(), "appends-per-second")
}

// BenchmarkHistoryQuery measures a cursor page plus the per-kind rollup
// over a store holding a full retention window — the /api/v1/history and
// /api/v1/history/aggregate serving path.
func BenchmarkHistoryQuery(b *testing.B) {
	br := snapshotBench(b)
	s, err := history.Open(history.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := s.Append(historyBenchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		page := s.Query(history.Query{Kind: "attack", AfterSeq: int64(i % n), Limit: 100})
		agg := s.Aggregate("attack", "", 64)
		total = page.Total + agg.Runs
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("query returned nothing")
	}
	br.Metric(float64(s.Len()), "records-stored")
}
